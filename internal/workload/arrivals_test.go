package workload

import (
	"math"
	"testing"

	"batchsched/internal/sim"
)

// The Poisson process must draw exactly the variates the machine's original
// inline arrival loop drew — every closed-run artifact's byte-identity
// hangs on this.
func TestPoissonMatchesInlineExpTime(t *testing.T) {
	a := sim.NewRNG(7).Stream("arrivals")
	b := sim.NewRNG(7).Stream("arrivals")
	p := Poisson{Rate: 0.6}
	var now sim.Time
	for i := 0; i < 1000; i++ {
		want := a.ExpTime(0.6)
		got := p.Next(now, b)
		if got != want {
			t.Fatalf("draw %d: Poisson.Next = %v, inline ExpTime = %v", i, got, want)
		}
		now += got
	}
}

func meanRate(t *testing.T, a Arrivals, seed int64, span sim.Time) float64 {
	t.Helper()
	rng := sim.NewRNG(seed).Stream("arrivals")
	var now sim.Time
	n := 0
	for now < span {
		now += a.Next(now, rng)
		n++
	}
	return float64(n) / span.Seconds()
}

func TestDiurnalMeanRate(t *testing.T) {
	// Over whole periods the sinusoid integrates out: mean rate ~= Base.
	d := NewDiurnal(2.0, 0.8, 100*sim.Second)
	got := meanRate(t, d, 3, 1000*sim.Second)
	if math.Abs(got-2.0) > 0.15 {
		t.Fatalf("diurnal mean rate = %.3f, want ~2.0", got)
	}
}

func TestDiurnalModulates(t *testing.T) {
	// Peak quarter-periods must see materially more arrivals than troughs.
	d := NewDiurnal(2.0, 0.9, 1000*sim.Second)
	rng := sim.NewRNG(11).Stream("arrivals")
	var now sim.Time
	peak, trough := 0, 0
	for now < 10_000*sim.Second {
		now += d.Next(now, rng)
		phase := math.Mod(float64(now)/float64(1000*sim.Second), 1)
		switch {
		case phase > 0.05 && phase < 0.45: // sin > 0 region
			peak++
		case phase > 0.55 && phase < 0.95: // sin < 0 region
			trough++
		}
	}
	if peak < 2*trough {
		t.Fatalf("diurnal modulation too weak: peak=%d trough=%d", peak, trough)
	}
}

func TestBurstMeanRates(t *testing.T) {
	// Long quiet sojourns with short violent bursts: the overall rate must
	// sit between Base and Base*Factor, and bursts must be visible as gap
	// clusters well above the quiet rate.
	b := NewBurst(1.0, 10, 50*sim.Second, 5*sim.Second)
	got := meanRate(t, b, 5, 5000*sim.Second)
	// Expected: (50*1 + 5*10)/55 ~= 1.82 tps.
	if got < 1.3 || got > 2.4 {
		t.Fatalf("burst mean rate = %.3f, want ~1.8", got)
	}
	if meanQuiet := meanRate(t, Poisson{Rate: 1}, 5, 5000*sim.Second); got < meanQuiet*1.2 {
		t.Fatalf("burst rate %.3f not above quiet rate %.3f", got, meanQuiet)
	}
}

func TestTraceCyclesAndValidates(t *testing.T) {
	tr := NewTrace([]sim.Time{sim.Second, 2 * sim.Second, 3 * sim.Second})
	want := []sim.Time{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		if g := tr.Next(0, nil); g != w*sim.Second {
			t.Fatalf("gap %d = %v, want %v", i, g, w*sim.Second)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewTrace accepted a non-positive gap")
		}
	}()
	NewTrace([]sim.Time{0})
}

func TestArrivalsDeterministic(t *testing.T) {
	build := func() []Arrivals {
		return []Arrivals{
			Poisson{Rate: 0.8},
			NewDiurnal(0.8, 0.5, 200*sim.Second),
			NewBurst(0.8, 4, 100*sim.Second, 20*sim.Second),
			NewTrace([]sim.Time{sim.Second, 3 * sim.Second}),
		}
	}
	as, bs := build(), build()
	for i := range as {
		ra := sim.NewRNG(42).Stream("arrivals")
		rb := sim.NewRNG(42).Stream("arrivals")
		var now sim.Time
		for j := 0; j < 500; j++ {
			ga, gb := as[i].Next(now, ra), bs[i].Next(now, rb)
			if ga != gb {
				t.Fatalf("process %d draw %d: %v != %v", i, j, ga, gb)
			}
			now += ga
		}
	}
}

func TestHeavyTailedUnitMeanAndTail(t *testing.T) {
	base := Fixed{Template: NewExp1(16).Steps(sim.NewRNG(1))}
	ht := NewHeavyTailed(base, 1.5, 0)
	rng := sim.NewRNG(9).Stream("workload")
	baseCost := base.Template[0].Cost
	var sum, max float64
	n := 20000
	for i := 0; i < n; i++ {
		steps := ht.Steps(rng)
		m := steps[0].Cost / baseCost
		r1 := steps[1].Cost / base.Template[1].Cost
		rd := steps[0].DeclaredCost / base.Template[0].DeclaredCost
		if math.Abs(r1-m) > 1e-9*m || math.Abs(rd-m) > 1e-9*m {
			t.Fatal("heavy-tail multiplier must scale every step's cost and declared cost alike")
		}
		sum += m
		if m > max {
			max = m
		}
	}
	mean := sum / float64(n)
	if mean < 0.85 || mean > 1.1 {
		t.Fatalf("heavy-tail multiplier mean = %.3f, want ~1 (load-preserving)", mean)
	}
	if max < 5 {
		t.Fatalf("heavy-tail max multiplier = %.2f over %d draws — no tail", max, n)
	}
}

func TestSourceSharedDrawPath(t *testing.T) {
	// A pre-drawn batch and an open-stream sequence over the same generator
	// and seed must produce byte-identical transaction i.
	gen := NewExp1(16)
	src := Source{Gen: gen, Arr: Poisson{Rate: 1}}
	batch := Source{Gen: gen}.DrawBatch(sim.NewRNG(21).Stream("workload"), 50)
	rng := sim.NewRNG(21).Stream("workload")
	for i, want := range batch {
		got := src.Steps(rng)
		if len(got) != len(want) {
			t.Fatalf("txn %d: %d steps vs %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("txn %d step %d: %+v != %+v", i, j, got[j], want[j])
			}
		}
	}
}
