package workload

import (
	"math"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// Exp1Skewed is Experiment 1 with Zipf-distributed file popularity instead
// of uniform choice: file i is drawn with probability proportional to
// 1/(i+1)^Theta. Popular files concentrate work on their home nodes, which
// is the load imbalance the paper's "resource-level load-balancing" future
// work is about.
type Exp1Skewed struct {
	// NumFiles is the database size.
	NumFiles int
	// Theta is the Zipf exponent (0 = uniform; ~0.8-1.2 = heavily skewed).
	Theta float64

	cdf []float64
}

// NewExp1Skewed returns a skewed Experiment-1 generator.
func NewExp1Skewed(numFiles int, theta float64) *Exp1Skewed {
	if numFiles < 2 {
		panic("workload: skewed Experiment 1 needs >= 2 files")
	}
	if theta < 0 {
		panic("workload: Zipf exponent must be >= 0")
	}
	g := &Exp1Skewed{NumFiles: numFiles, Theta: theta}
	g.cdf = make([]float64, numFiles)
	sum := 0.0
	for i := 0; i < numFiles; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		g.cdf[i] = sum
	}
	for i := range g.cdf {
		g.cdf[i] /= sum
	}
	return g
}

// draw samples one file from the Zipf CDF.
func (g *Exp1Skewed) draw(rng *sim.RNG) int {
	u := rng.Float64()
	lo, hi := 0, g.NumFiles-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Steps instantiates Pattern1 on two distinct Zipf-drawn files.
func (g *Exp1Skewed) Steps(rng *sim.RNG) []model.Step {
	f1 := g.draw(rng)
	f2 := f1
	for f2 == f1 {
		f2 = g.draw(rng)
	}
	steps, err := Pattern1.Instantiate(map[string]model.FileID{
		"F1": model.FileID(f1),
		"F2": model.FileID(f2),
	})
	if err != nil {
		panic(err)
	}
	return steps
}
