package workload

import (
	"fmt"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// HeavyTailed scales each transaction's actual and declared step costs by a
// per-transaction Pareto multiplier, turning any base workload into a
// heavy-tailed cost mix: most transactions shrink slightly, a few grow by
// up to Cap. The multiplier's scale is chosen so the unbounded draw has
// unit mean ((alpha-1)/alpha for shape alpha > 1), so the offered load is
// approximately unchanged (the Cap clamp trims the mean slightly below 1).
//
// Cost and DeclaredCost scale together: cost-declaration error is
// Experiment 3's axis (WithError), not this one, and the two wrappers
// compose.
type HeavyTailed struct {
	// Gen is the underlying generator.
	Gen Generator
	// Alpha is the Pareto shape (> 1; smaller = heavier tail; 1.5 is a
	// reasonably violent default).
	Alpha float64
	// Cap bounds the multiplier (0 means 100x).
	Cap float64
}

// NewHeavyTailed wraps gen with a unit-mean Pareto cost multiplier.
func NewHeavyTailed(gen Generator, alpha, cap float64) HeavyTailed {
	if alpha <= 1 {
		panic(fmt.Sprintf("workload: heavy-tailed costs need Alpha > 1 (finite mean), got %g", alpha))
	}
	if cap < 0 {
		panic(fmt.Sprintf("workload: heavy-tailed cost cap must be >= 0, got %g", cap))
	}
	return HeavyTailed{Gen: gen, Alpha: alpha, Cap: cap}
}

// Steps draws steps from the wrapped generator and scales their costs by
// one shared multiplier (one draw per transaction, after the base draws, so
// wrapping never perturbs the base generator's stream).
func (g HeavyTailed) Steps(rng *sim.RNG) []model.Step {
	steps := g.Gen.Steps(rng)
	m := g.multiplier(rng)
	for i := range steps {
		steps[i].Cost *= m
		steps[i].DeclaredCost *= m
	}
	return steps
}

func (g HeavyTailed) multiplier(rng *sim.RNG) float64 {
	if g.Alpha <= 1 {
		panic(fmt.Sprintf("workload: heavy-tailed costs need Alpha > 1, got %g", g.Alpha))
	}
	cap := g.Cap
	if cap == 0 {
		cap = 100
	}
	xm := (g.Alpha - 1) / g.Alpha // unit mean for the unbounded draw
	m := rng.Pareto(g.Alpha, xm)
	if m > cap {
		m = cap
	}
	return m
}
