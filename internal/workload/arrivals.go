package workload

import (
	"fmt"
	"math"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// Arrivals is an open arrival process: Next returns the gap from now to the
// next arrival, drawing from the rng it is handed (the backend's "arrivals"
// stream), so the arrival sequence is seed-deterministic on every backend.
// Time-varying processes need now; homogeneous ones ignore it.
//
// Processes with internal state (Trace, Burst) use pointer receivers — build
// a fresh one per run, exactly like schedulers.
type Arrivals interface {
	Next(now sim.Time, rng *sim.RNG) sim.Time
}

// Poisson is the paper's homogeneous Poisson process at Rate transactions
// per second. Next draws exactly rng.ExpTime(Rate) — byte-compatible with
// the machine's original inline arrival draw, which is what keeps every
// closed-batch paper artifact identical after the arrival refactor.
type Poisson struct {
	// Rate is the arrival rate in transactions per second.
	Rate float64
}

// Next draws one exponential inter-arrival gap.
func (p Poisson) Next(_ sim.Time, rng *sim.RNG) sim.Time {
	return rng.ExpTime(p.Rate)
}

// Trace replays a recorded gap sequence, cycling when exhausted — the
// deterministic-trace arrival process (replay of production inter-arrival
// logs, adversarial gap patterns in tests).
type Trace struct {
	// Gaps is the inter-arrival sequence to replay.
	Gaps []sim.Time
	pos  int
}

// NewTrace returns a trace process over the given gaps.
func NewTrace(gaps []sim.Time) *Trace {
	if len(gaps) == 0 {
		panic("workload: trace arrivals need at least one gap")
	}
	for _, g := range gaps {
		if g <= 0 {
			panic(fmt.Sprintf("workload: trace gaps must be positive, got %v", g))
		}
	}
	return &Trace{Gaps: gaps}
}

// Next replays the next recorded gap.
func (t *Trace) Next(_ sim.Time, _ *sim.RNG) sim.Time {
	g := t.Gaps[t.pos%len(t.Gaps)]
	t.pos++
	return g
}

// Diurnal is a nonhomogeneous Poisson process with a sinusoidal rate
//
//	lambda(t) = Base * (1 + Amplitude*sin(2*pi*t/Period)),
//
// sampled by thinning against the peak rate Base*(1+Amplitude) — the
// classic day/night load shape. Amplitude must be in [0, 1) so the rate
// stays positive.
type Diurnal struct {
	// Base is the mean arrival rate in transactions per second.
	Base float64
	// Amplitude is the relative swing around Base, in [0, 1).
	Amplitude float64
	// Period is the cycle length.
	Period sim.Time
}

// NewDiurnal returns a sinusoidally-modulated Poisson process.
func NewDiurnal(base, amplitude float64, period sim.Time) Diurnal {
	d := Diurnal{Base: base, Amplitude: amplitude, Period: period}
	d.validate()
	return d
}

func (d Diurnal) validate() {
	if d.Base <= 0 || d.Amplitude < 0 || d.Amplitude >= 1 || d.Period <= 0 {
		panic(fmt.Sprintf("workload: diurnal arrivals need Base > 0, Amplitude in [0,1), Period > 0; got %+v", d))
	}
}

// Next thins candidate arrivals at the peak rate until one survives the
// instantaneous-rate acceptance test.
func (d Diurnal) Next(now sim.Time, rng *sim.RNG) sim.Time {
	d.validate()
	peak := d.Base * (1 + d.Amplitude)
	var gap sim.Time
	for {
		gap += rng.ExpTime(peak)
		t := now + gap
		lam := d.Base * (1 + d.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(d.Period)))
		if rng.Float64()*peak <= lam {
			return gap
		}
	}
}

// Burst is a two-state Markov-modulated Poisson process: Base rate in the
// quiet state, Base*Factor during bursts, with exponentially distributed
// state sojourns — flash-crowd traffic. The exponential gap is re-drawn at
// each state boundary, which is exact by memorylessness.
type Burst struct {
	// Base is the quiet-state arrival rate in transactions per second.
	Base float64
	// Factor multiplies the rate during a burst (> 1).
	Factor float64
	// MeanQuiet and MeanBurst are the mean state sojourns.
	MeanQuiet sim.Time
	MeanBurst sim.Time

	started bool
	burst   bool
	until   sim.Time // current state's end
}

// NewBurst returns an on/off burst-modulated Poisson process.
func NewBurst(base, factor float64, meanQuiet, meanBurst sim.Time) *Burst {
	if base <= 0 || factor <= 1 || meanQuiet <= 0 || meanBurst <= 0 {
		panic(fmt.Sprintf("workload: burst arrivals need Base > 0, Factor > 1 and positive sojourns; got base=%g factor=%g quiet=%v burst=%v",
			base, factor, meanQuiet, meanBurst))
	}
	return &Burst{Base: base, Factor: factor, MeanQuiet: meanQuiet, MeanBurst: meanBurst}
}

func (b *Burst) sojourn(rng *sim.RNG) sim.Time {
	mean := b.MeanQuiet
	if b.burst {
		mean = b.MeanBurst
	}
	s := sim.Time(rng.Exp(1) * float64(mean))
	if s < 1 {
		s = 1
	}
	return s
}

// Next advances through state boundaries until a candidate gap lands inside
// the current state.
func (b *Burst) Next(now sim.Time, rng *sim.RNG) sim.Time {
	if !b.started {
		b.started = true
		b.until = now + b.sojourn(rng)
	}
	t := now
	for {
		if t >= b.until {
			b.burst = !b.burst
			b.until = t + b.sojourn(rng)
		}
		rate := b.Base
		if b.burst {
			rate *= b.Factor
		}
		gap := rng.ExpTime(rate)
		if t+gap <= b.until {
			return t + gap - now
		}
		t = b.until
	}
}

// Source couples a step generator with an optional arrival process: the one
// draw path shared by closed-batch prefetch (DrawBatch, behind the package
// facade's GenerateBatch) and the open-stream admission loops on both
// backends. Both consume the generator through Steps in arrival order, so a
// batch pre-drawn from a Source and an open stream drawn live from the same
// Source see byte-identical transaction i for every i.
type Source struct {
	// Gen produces the steps of successive transactions.
	Gen Generator
	// Arr is the arrival process; nil means closed batch (NextGap panics).
	Arr Arrivals
}

// Steps draws the next transaction's steps.
func (s Source) Steps(rng *sim.RNG) []model.Step { return s.Gen.Steps(rng) }

// NextGap draws the gap to the next arrival.
func (s Source) NextGap(now sim.Time, rng *sim.RNG) sim.Time {
	if s.Arr == nil {
		panic("workload: Source has no arrival process (closed batch)")
	}
	return s.Arr.Next(now, rng)
}

// DrawBatch pre-draws the steps of n transactions — the closed-batch caller.
func (s Source) DrawBatch(rng *sim.RNG, n int) [][]model.Step {
	out := make([][]model.Step, n)
	for i := range out {
		out[i] = s.Steps(rng)
	}
	return out
}
