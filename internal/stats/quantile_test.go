package stats

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestQuantileSortedInterpolates(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{1, 40},
		{0.5, 25},    // midpoint between the 2nd and 3rd order statistics
		{0.25, 17.5}, // pos = 0.75 -> 10 + 0.75*(20-10)
		{0.95, 38.5}, // pos = 2.85 -> 30 + 0.85*(40-30)
		{-1, 10},     // clamped
		{2, 40},      // clamped
	}
	for _, c := range cases {
		if got := QuantileSorted(xs, c.q); !almost(got, c.want) {
			t.Errorf("QuantileSorted(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := QuantileSorted(nil, 0.5); got != 0 {
		t.Errorf("empty slice: got %v, want 0", got)
	}
	if got := QuantileSorted([]float64{7}, 0.99); got != 7 {
		t.Errorf("single element: got %v, want 7", got)
	}
}

func TestQuantileSortsACopy(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Quantile(xs, 0.5); !almost(got, 2) {
		t.Errorf("Quantile(unsorted, 0.5) = %v, want 2", got)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestPercentileShorthands(t *testing.T) {
	xs := make([]float64, 101) // 0..100: pN == N exactly under type-7
	for i := range xs {
		xs[i] = float64(i)
	}
	if got := P50(xs); !almost(got, 50) {
		t.Errorf("P50 = %v, want 50", got)
	}
	if got := P95(xs); !almost(got, 95) {
		t.Errorf("P95 = %v, want 95", got)
	}
	if got := P99(xs); !almost(got, 99) {
		t.Errorf("P99 = %v, want 99", got)
	}
}
