// Package stats provides the small statistical toolkit the measurement
// harness uses: sample moments, Student-t confidence intervals for
// replicated simulations, and batch-means for single long runs.
package stats

import (
	"fmt"
	"math"
)

// Sample accumulates observations for moment estimates. The zero value is
// ready to use.
type Sample struct {
	n    int
	sum  float64
	sumS float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumS += x * x
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := (s.sumS - float64(s.n)*m*m) / float64(s.n-1)
	if v < 0 { // numerical guard
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min and Max return the extremes (0 when empty).
func (s *Sample) Min() float64 { return s.min }
func (s *Sample) Max() float64 { return s.max }

// CI95 returns the half-width of the 95% Student-t confidence interval for
// the mean (0 for n < 2).
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return tCritical95(s.n-1) * s.StdDev() / math.Sqrt(float64(s.n))
}

// String formats mean ± half-width.
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.n)
}

// tCritical95 returns the two-sided 95% critical value of Student's t with
// df degrees of freedom (tabulated for small df, asymptotic beyond).
func tCritical95(df int) float64 {
	table := []float64{
		0, // df=0 unused
		12.706, 4.303, 3.182, 2.776, 2.571,
		2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131,
		2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 40:
		return 2.03
	case df < 60:
		return 2.01
	case df < 120:
		return 1.99
	default:
		return 1.96
	}
}

// BatchMeans splits a series of sequential observations into k batches and
// returns the sample of batch means — the standard way to get a confidence
// interval out of one long, autocorrelated simulation run. It errors when
// there are fewer than 2*k observations.
func BatchMeans(xs []float64, k int) (*Sample, error) {
	if k < 2 {
		return nil, fmt.Errorf("stats: need at least 2 batches, got %d", k)
	}
	if len(xs) < 2*k {
		return nil, fmt.Errorf("stats: %d observations cannot fill %d batches", len(xs), k)
	}
	batch := len(xs) / k
	var s Sample
	for b := 0; b < k; b++ {
		sum := 0.0
		for i := b * batch; i < (b+1)*batch; i++ {
			sum += xs[i]
		}
		s.Add(sum / float64(batch))
	}
	return &s, nil
}
