package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Unbiased variance of this classic set is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Error("empty sample must be all zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 || s.CI95() != 0 {
		t.Error("single observation has no variance or CI")
	}
}

func TestCI95KnownCase(t *testing.T) {
	// Two observations 0 and 2: mean 1, sd sqrt(2), CI = 12.706*sqrt(2)/sqrt(2).
	var s Sample
	s.Add(0)
	s.Add(2)
	want := 12.706
	if math.Abs(s.CI95()-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestCI95Coverage(t *testing.T) {
	// Frequentist sanity: the 95% CI of n=10 normal samples should cover
	// the true mean ~95% of the time.
	rng := rand.New(rand.NewSource(42))
	covered := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		var s Sample
		for j := 0; j < 10; j++ {
			s.Add(5 + 2*rng.NormFloat64())
		}
		if math.Abs(s.Mean()-5) <= s.CI95() {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.93 || frac > 0.97 {
		t.Errorf("coverage = %v, want ~0.95", frac)
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := tCritical95(df)
		if v > prev+1e-9 {
			t.Fatalf("t-critical not monotone at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("df=0 must be NaN")
	}
	if tCritical95(1000) != 1.96 {
		t.Error("asymptote must be 1.96")
	}
}

func TestBatchMeans(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	s, err := BatchMeans(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 || s.Mean() != 2.5 {
		t.Errorf("batch means = %v", s)
	}
	if _, err := BatchMeans(xs, 1); err == nil {
		t.Error("k=1 must error")
	}
	if _, err := BatchMeans(xs[:3], 2); err == nil {
		t.Error("too few observations must error")
	}
}

// Property: Sample.Mean and Variance agree with direct computation.
func TestSampleMatchesDirect(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Sample
		var xs []float64
		for _, r := range raw {
			x := float64(r) / 128
			xs = append(xs, x)
			s.Add(x)
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		variance := varSum / float64(len(xs)-1)
		return math.Abs(s.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(s.Variance()-variance) < 1e-6*(1+variance)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
