package stats

import "sort"

// QuantileSorted returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// slice, using linear interpolation between order statistics (the R type-7 /
// numpy default estimator). It returns 0 on an empty slice; q outside [0, 1]
// is clamped.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Quantile sorts a copy of xs and returns its q-quantile.
func Quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// P50, P95 and P99 are the percentile shorthands the reports use.
func P50(xs []float64) float64 { return Quantile(xs, 0.50) }
func P95(xs []float64) float64 { return Quantile(xs, 0.95) }
func P99(xs []float64) float64 { return Quantile(xs, 0.99) }
