package history

import (
	"testing"

	"batchsched/internal/model"
)

// deferredScenario builds a history that is legal under Kung-Robinson
// backward validation but looks cyclic if optimistic writes are recorded at
// execution time instead of commit time:
//
//	T2 (optimistic) buffers writes of A and B early (t=8, t=10) but commits
//	at t=40; T1 reads B at t=5 and A at t=20 and commits at t=30 writing
//	nothing. Validation passes for both (W(T1) = ∅; nothing committed
//	during T1). With in-place stamping the checker would see
//	w2(B)@8 after r1(B)@5 (T1->T2) but w2(A)@10 before r1(A)@20 (T2->T1):
//	a phantom cycle. With commit-time stamping both writes land at t=40 and
//	the history is serial: T1 then T2.
func deferredScenario(r *Recorder) {
	files := map[string]model.FileID{"A": 0, "B": 1}
	t1 := rec(r, 1, "r(B:1)->r(A:1)", files, []int{5, 20})
	t2 := rec(r, 2, "w(B:1)->w(A:1)", files, []int{8, 10})
	r.Committed(t1, msec(30))
	r.Committed(t2, msec(40))
}

func TestDeferredWritesResolvePhantomCycle(t *testing.T) {
	inPlace := New()
	deferredScenario(inPlace)
	if err := inPlace.CheckSerializable(); err == nil {
		t.Fatal("in-place recording should see the phantom cycle (that is the bug the deferred mode fixes)")
	}

	deferred := NewDeferredWrites()
	deferredScenario(deferred)
	if err := deferred.CheckSerializable(); err != nil {
		t.Fatalf("deferred-writes recording must accept the KR-valid history: %v", err)
	}
}

func TestDeferredWritesKeepReadTimes(t *testing.T) {
	r := NewDeferredWrites()
	files := map[string]model.FileID{"A": 0}
	// Writer commits first; a later reader must still order after it.
	w := rec(r, 1, "w(A:1)", files, []int{10})
	r.Committed(w, msec(15))
	rd := rec(r, 2, "r(A:1)", files, []int{20})
	r.Committed(rd, msec(25))
	if err := r.CheckSerializable(); err != nil {
		t.Fatalf("serial commit order flagged: %v", err)
	}
	if r.Ops() != 2 {
		t.Errorf("ops = %d", r.Ops())
	}
}
