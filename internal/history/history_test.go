package history

import (
	"testing"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

func rec(r *Recorder, id int64, pattern string, binding map[string]model.FileID, times []int) *model.Txn {
	p := model.MustParsePattern(pattern)
	steps, err := p.Instantiate(binding)
	if err != nil {
		panic(err)
	}
	t := model.NewTxn(id, 0, steps)
	for i := range steps {
		r.StepDone(t, i, msec(times[i]))
	}
	return t
}

func msec(ms int) sim.Time { return sim.Time(ms) * sim.Millisecond }

func TestSerialHistoryIsSerializable(t *testing.T) {
	r := New()
	files := map[string]model.FileID{"A": 0, "B": 1}
	t1 := rec(r, 1, "r(A:1)->w(B:1)", files, []int{10, 20})
	t2 := rec(r, 2, "w(A:1)->w(B:1)", files, []int{30, 40})
	r.Committed(t1, msec(25))
	r.Committed(t2, msec(45))
	if err := r.CheckSerializable(); err != nil {
		t.Fatalf("serial history flagged: %v", err)
	}
	if r.Commits() != 2 || r.Ops() != 4 {
		t.Errorf("commits=%d ops=%d", r.Commits(), r.Ops())
	}
}

func TestCycleDetected(t *testing.T) {
	r := New()
	files := map[string]model.FileID{"A": 0, "B": 1}
	// T1 writes A before T2 reads it (T1 -> T2), but T2 writes B before T1
	// reads it (T2 -> T1): a classic non-serializable interleaving.
	t1 := rec(r, 1, "w(A:1)->r(B:1)", files, []int{10, 40})
	t2 := rec(r, 2, "r(A:1)->w(B:1)", files, []int{20, 30})
	r.Committed(t1, msec(50))
	r.Committed(t2, msec(55))
	if err := r.CheckSerializable(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestReadsDoNotConflict(t *testing.T) {
	r := New()
	files := map[string]model.FileID{"A": 0}
	t1 := rec(r, 1, "r(A:1)", files, []int{10})
	t2 := rec(r, 2, "r(A:1)", files, []int{20})
	r.Committed(t1, msec(30))
	r.Committed(t2, msec(35))
	if err := r.CheckSerializable(); err != nil {
		t.Fatalf("read-only overlap flagged: %v", err)
	}
}

func TestRestartDiscardsAttempt(t *testing.T) {
	r := New()
	files := map[string]model.FileID{"A": 0, "B": 1}
	// T2's first attempt would form a cycle, but it restarts; its second
	// attempt is clean.
	t1 := rec(r, 1, "w(A:1)->r(B:1)", files, []int{10, 40})
	t2 := rec(r, 2, "r(A:1)->w(B:1)", files, []int{20, 30})
	r.Restarted(t2, msec(45)) // first attempt discarded
	r.Committed(t1, msec(50))
	for i := range t2.Steps {
		r.StepDone(t2, i, msec(60+10*i))
	}
	r.Committed(t2, msec(90))
	if err := r.CheckSerializable(); err != nil {
		t.Fatalf("restarted history flagged: %v", err)
	}
	if r.Restarts() != 1 {
		t.Errorf("restarts = %d, want 1", r.Restarts())
	}
}

func TestUncommittedOpsIgnored(t *testing.T) {
	r := New()
	files := map[string]model.FileID{"A": 0}
	t1 := rec(r, 1, "w(A:1)", files, []int{10})
	rec(r, 2, "w(A:1)", files, []int{5}) // never commits
	r.Committed(t1, msec(20))
	if r.Ops() != 1 {
		t.Errorf("ops = %d, want 1 (uncommitted excluded)", r.Ops())
	}
	if err := r.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
}

func TestThreeWayCycle(t *testing.T) {
	r := New()
	files := map[string]model.FileID{"A": 0, "B": 1, "C": 2}
	// T1 -> T2 on A, T2 -> T3 on B, T3 -> T1 on C.
	t1 := rec(r, 1, "w(A:1)->w(C:1)", files, []int{10, 60})
	t2 := rec(r, 2, "w(A:1)->w(B:1)", files, []int{20, 30})
	t3 := rec(r, 3, "w(B:1)->w(C:1)", files, []int{40, 50})
	r.Committed(t1, msec(70))
	r.Committed(t2, msec(71))
	r.Committed(t3, msec(72))
	if err := r.CheckSerializable(); err == nil {
		t.Fatal("three-way cycle not detected")
	}
}
