// Package history records the read/write history of a simulation run and
// checks conflict-serializability: the serialization graph over committed
// transactions (an edge Ti -> Tj for each pair of conflicting operations on
// a file where Ti's came first) must be acyclic. It implements
// machine.Observer, so a test plugs a Recorder into a Machine and asserts
// the invariant afterwards. NODC intentionally violates it; every real
// scheduler must satisfy it.
package history

import (
	"fmt"
	"sort"

	"batchsched/internal/model"
	"batchsched/internal/sim"
)

// op is one executed step: an access to a file at a point in virtual time.
type op struct {
	txn   int64
	file  model.FileID
	write bool
	at    sim.Time
	seq   int // tie-break for identical timestamps (recording order)
}

// Recorder accumulates the history of one run.
type Recorder struct {
	live      map[int64][]op // uncommitted attempts, discarded on restart
	committed []op
	commits   int
	restarts  int
	seq       int
	lastAt    sim.Time // high-water mark for monotone clamping
	monotone  bool
	deferred  bool
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{live: make(map[int64][]op)}
}

// NewDeferredWrites returns a recorder for deferred-update concurrency
// control (the optimistic scheduler): writes are buffered during execution
// and installed atomically at commit, so the recorder re-stamps a
// transaction's write operations to its commit time. Reads keep their
// execution times. Without this, the checker would see an optimistic
// transaction's buffered writes as in-place updates and report phantom
// conflicts.
func NewDeferredWrites() *Recorder {
	r := New()
	r.deferred = true
	return r
}

// SetMonotone makes the recorder clamp operation timestamps nondecreasing
// in recording order. Wall-clock sources (the live backend) must enable
// this: the serialization-graph checker orders same-file operations by
// (at, seq), and a clock reading behind an earlier one would re-order
// operations against the real execution order, fabricating (or hiding)
// conflicts. Clamping to the recording-order high-water mark is sound
// there because the control node records events in its processing order,
// which respects the conflict order — a conflicting step cannot run before
// the CN has processed its predecessor's release. Off by default: a
// virtual-time recorder may legitimately be fed per-transaction op batches
// whose stamps interleave.
func (r *Recorder) SetMonotone(on bool) { r.monotone = on }

func (r *Recorder) clamp(at sim.Time) sim.Time {
	if !r.monotone {
		return at
	}
	if at < r.lastAt {
		return r.lastAt
	}
	r.lastAt = at
	return at
}

// StepDone records a finished step (machine.Observer).
func (r *Recorder) StepDone(t *model.Txn, step int, at sim.Time) {
	st := t.Steps[step]
	r.seq++
	r.live[t.ID] = append(r.live[t.ID], op{
		txn: t.ID, file: st.File, write: st.Write, at: r.clamp(at), seq: r.seq,
	})
}

// Committed freezes the transaction's operations into the history
// (machine.Observer). Under deferred-update recording, write operations are
// re-stamped to the commit time.
func (r *Recorder) Committed(t *model.Txn, at sim.Time) {
	ops := r.live[t.ID]
	if r.deferred {
		at = r.clamp(at)
		for i := range ops {
			if ops[i].write {
				r.seq++
				ops[i].at = at
				ops[i].seq = r.seq
			}
		}
	}
	r.committed = append(r.committed, ops...)
	delete(r.live, t.ID)
	r.commits++
}

// Restarted discards the rolled-back attempt's operations
// (machine.Observer).
func (r *Recorder) Restarted(t *model.Txn, at sim.Time) {
	delete(r.live, t.ID)
	r.restarts++
}

// Commits returns the number of committed transactions recorded.
func (r *Recorder) Commits() int { return r.commits }

// Restarts returns the number of restarts recorded.
func (r *Recorder) Restarts() int { return r.restarts }

// Ops returns the number of committed operations recorded.
func (r *Recorder) Ops() int { return len(r.committed) }

// CheckSerializable verifies conflict-serializability of the committed
// history and returns a descriptive error when a precedence cycle exists.
func (r *Recorder) CheckSerializable() error {
	// Group ops per file, ordered by time (seq tie-break).
	perFile := make(map[model.FileID][]op)
	for _, o := range r.committed {
		perFile[o.file] = append(perFile[o.file], o)
	}
	succ := make(map[int64]map[int64]bool)
	addEdge := func(a, b int64) {
		if a == b {
			return
		}
		if succ[a] == nil {
			succ[a] = make(map[int64]bool)
		}
		succ[a][b] = true
	}
	for _, ops := range perFile {
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].at != ops[j].at {
				return ops[i].at < ops[j].at
			}
			return ops[i].seq < ops[j].seq
		})
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				if ops[i].write || ops[j].write {
					addEdge(ops[i].txn, ops[j].txn)
				}
			}
		}
	}
	// Cycle detection (iterative three-color DFS).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int64]int)
	var nodes []int64
	for a := range succ {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var visit func(v int64) error
	visit = func(v int64) error {
		color[v] = gray
		var out []int64
		for u := range succ[v] {
			out = append(out, u)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		for _, u := range out {
			switch color[u] {
			case gray:
				return fmt.Errorf("history: serialization cycle through T%d and T%d", v, u)
			case white:
				if err := visit(u); err != nil {
					return err
				}
			}
		}
		color[v] = black
		return nil
	}
	for _, v := range nodes {
		if color[v] == white {
			if err := visit(v); err != nil {
				return err
			}
		}
	}
	return nil
}
