package history_test

import (
	"testing"

	"batchsched/internal/history"
	"batchsched/internal/machine"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/workload"
)

// runWithRecorder drives a full machine simulation and returns the history.
func runWithRecorder(t *testing.T, name string, gen machine.Generator, rate float64, dd int, seed int64) *history.Recorder {
	t.Helper()
	p := sched.DefaultParams()
	if name == "C2PL+M" {
		p.MPL = 8
	}
	cfg := machine.DefaultConfig()
	cfg.ArrivalRate = rate
	cfg.DD = dd
	cfg.Duration = 300_000 * sim.Millisecond
	m, err := machine.New(cfg, sched.MustNew(name, p), gen, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	rec := history.New()
	if name == "OPT" {
		// OPT is deferred-update: writes install at commit.
		rec = history.NewDeferredWrites()
	}
	m.SetObserver(rec)
	m.Run()
	return rec
}

// TestSchedulersProduceSerializableHistories is the central correctness
// invariant: every real scheduler (everything but NODC) must yield a
// conflict-serializable history on both experiment workloads, at both low
// and saturating loads, with and without intra-transaction parallelism.
func TestSchedulersProduceSerializableHistories(t *testing.T) {
	gens := map[string]machine.Generator{
		"exp1": workload.NewExp1(16),
		"exp2": workload.NewExp2(),
	}
	for _, name := range []string{"ASL", "GOW", "LOW", "C2PL", "C2PL+M", "OPT", "2PL"} {
		for genName, gen := range gens {
			for _, dd := range []int{1, 4} {
				for _, rate := range []float64{0.2, 1.2} {
					rec := runWithRecorder(t, name, gen, rate, dd, 99)
					if rec.Commits() == 0 {
						t.Errorf("%s/%s dd=%d rate=%g: no commits at all", name, genName, dd, rate)
						continue
					}
					if err := rec.CheckSerializable(); err != nil {
						t.Errorf("%s/%s dd=%d rate=%g: %v", name, genName, dd, rate, err)
					}
					if name != "OPT" && name != "2PL" && rec.Restarts() > 0 {
						t.Errorf("%s/%s dd=%d rate=%g: %d restarts (must be rollback-free)",
							name, genName, dd, rate, rec.Restarts())
					}
				}
			}
		}
	}
}

// TestNODCViolatesSerializability documents why NODC is only an upper
// bound: at a contended load its history is (almost surely) not
// serializable.
func TestNODCViolatesSerializability(t *testing.T) {
	rec := runWithRecorder(t, "NODC", workload.NewExp1(8), 1.2, 1, 5)
	if rec.Commits() < 100 {
		t.Fatalf("commits = %d, want a busy run", rec.Commits())
	}
	if err := rec.CheckSerializable(); err == nil {
		t.Error("NODC produced a serializable history at heavy contention — the workload is not stressing it")
	}
}
