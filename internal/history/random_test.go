package history_test

import (
	"fmt"
	"testing"

	"batchsched/internal/history"
	"batchsched/internal/machine"
	"batchsched/internal/model"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
)

// randomGen emits adversarial random patterns: 1-5 steps over a small file
// set, plain-S reads, X reads, writes, S-then-X upgrades on the same file,
// and occasional zero-cost steps. It stresses code paths the paper's fixed
// patterns never reach.
type randomGen struct {
	files int
}

func (g randomGen) Steps(rng *sim.RNG) []model.Step {
	n := 1 + rng.Intn(5)
	steps := make([]model.Step, 0, n)
	for i := 0; i < n; i++ {
		f := model.FileID(rng.Intn(g.files))
		var st model.Step
		switch rng.Intn(4) {
		case 0: // plain shared read
			st = model.Step{File: f, LockMode: model.S}
		case 1: // X-locked read (Experiment-1 style)
			st = model.Step{File: f, LockMode: model.X}
		default: // write
			st = model.Step{File: f, Write: true, LockMode: model.X}
		}
		switch rng.Intn(5) {
		case 0:
			st.Cost = 0 // zero-cost step: pure locking traffic
		default:
			st.Cost = float64(rng.Intn(30)+1) / 10.0
		}
		st.DeclaredCost = st.Cost
		steps = append(steps, st)
	}
	return steps
}

// TestRandomWorkloadsStaySerializableAndDrain fuzzes every real scheduler
// with adversarial patterns at moderate load: histories must stay
// serializable, lock-based schedulers must never restart, and at this load
// nearly everything must complete (no stuck transactions / scheduler
// livelock).
func TestRandomWorkloadsStaySerializableAndDrain(t *testing.T) {
	for _, name := range []string{"ASL", "GOW", "LOW", "C2PL", "C2PL+M", "OPT", "2PL"} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				p := sched.DefaultParams()
				if name == "C2PL+M" {
					p.MPL = 6
				}
				cfg := machine.DefaultConfig()
				cfg.NumFiles = 6
				cfg.ArrivalRate = 0.25
				if name == "OPT" || name == "2PL" {
					// OPT thrashes on restarts and traditional 2PL convoys
					// on chains of blocking well below the others' capacity
					// (exactly the paper's argument); drain them at loads
					// they can sustain.
					cfg.ArrivalRate = 0.1
				}
				cfg.Duration = 400_000 * sim.Millisecond
				m, err := machine.New(cfg, sched.MustNew(name, p), randomGen{files: 6}, sim.NewRNG(seed*77))
				if err != nil {
					t.Fatal(err)
				}
				rec := history.New()
				if name == "OPT" {
					rec = history.NewDeferredWrites()
				}
				m.SetObserver(rec)
				sum := m.Run()
				if err := rec.CheckSerializable(); err != nil {
					t.Fatalf("non-serializable: %v", err)
				}
				if name != "OPT" && name != "2PL" && sum.Restarts != 0 {
					t.Fatalf("%d restarts in a rollback-free scheduler", sum.Restarts)
				}
				if sum.Completions == 0 {
					t.Fatal("nothing completed")
				}
				// Drain check: at 0.25 TPS with a 6-file database only a
				// handful of transactions should be in flight at the end.
				if stuck := sum.Arrivals - sum.Completions; stuck > sum.Arrivals/3 {
					t.Fatalf("%d of %d arrivals unfinished: likely stuck", stuck, sum.Arrivals)
				}
			})
		}
	}
}

// TestRandomWorkloadsGOWGreedyAblation fuzzes the GOW-greedy ablation path,
// which takes different grant decisions but must preserve safety.
func TestRandomWorkloadsGOWGreedyAblation(t *testing.T) {
	p := sched.DefaultParams()
	p.GOWGreedy = true
	cfg := machine.DefaultConfig()
	cfg.NumFiles = 6
	cfg.ArrivalRate = 0.3
	cfg.Duration = 300_000 * sim.Millisecond
	m, err := machine.New(cfg, sched.NewGOW(p), randomGen{files: 6}, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	rec := history.New()
	m.SetObserver(rec)
	sum := m.Run()
	if err := rec.CheckSerializable(); err != nil {
		t.Fatalf("greedy GOW non-serializable: %v", err)
	}
	if sum.Restarts != 0 || sum.Completions == 0 {
		t.Fatalf("restarts=%d completions=%d", sum.Restarts, sum.Completions)
	}
}
