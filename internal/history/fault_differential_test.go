package history_test

import (
	"testing"

	"batchsched/internal/fault"
	"batchsched/internal/history"
	"batchsched/internal/lock"
	"batchsched/internal/machine"
	"batchsched/internal/metrics"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/wtpg"
)

// faultScenario pairs a fault configuration with the restart hold-back that
// keeps crash victims from hammering a node that is still down, plus a probe
// asserting the scenario's faults actually fired (a scenario that injects
// nothing would pass vacuously).
type faultScenario struct {
	name         string
	faults       fault.Config
	restartDelay sim.Time
	fired        func(s metrics.Summary) bool
}

func faultScenarios() []faultScenario {
	return []faultScenario{
		{
			name:         "crashes",
			faults:       fault.Config{MTBF: 150 * sim.Second, MTTR: 5 * sim.Second},
			restartDelay: 2 * sim.Second,
			fired:        func(s metrics.Summary) bool { return s.Crashes > 0 },
		},
		{
			name:         "msgloss",
			faults:       fault.Config{MsgLoss: 0.05, MsgTimeout: 5 * sim.Second, MsgRetries: 3},
			restartDelay: sim.Second,
			fired:        func(s metrics.Summary) bool { return s.MsgLost > 0 },
		},
		{
			name:   "stragglers",
			faults: fault.Config{StragglerMTBF: 120 * sim.Second, StragglerDuration: 20 * sim.Second, StragglerFactor: 4},
			fired:  func(s metrics.Summary) bool { return s.StragglerEpisodes > 0 },
		},
		{
			name: "combined",
			faults: fault.Config{
				MTBF: 200 * sim.Second, MTTR: 5 * sim.Second,
				StragglerMTBF: 150 * sim.Second, StragglerDuration: 15 * sim.Second, StragglerFactor: 3,
				MsgLoss: 0.03, MsgTimeout: 5 * sim.Second, MsgRetries: 3,
			},
			restartDelay: 2 * sim.Second,
			fired:        func(s metrics.Summary) bool { return s.Crashes > 0 && s.StragglerEpisodes > 0 },
		},
	}
}

// realSchedulers are the rollback-capable schedulers of the paper's lineup;
// NODC (no concurrency control at all) is exercised separately below.
var realSchedulers = []string{"ASL", "GOW", "LOW", "C2PL", "C2PL+M", "OPT"}

func newFaultyRecorder(name string) *history.Recorder {
	if name == "OPT" {
		return history.NewDeferredWrites()
	}
	return history.New()
}

// TestFaultDifferentialSerializable is the differential harness: every real
// scheduler runs the same adversarial random workload once failure-free and
// once per fault scenario, and the committed history must stay
// conflict-serializable either way — fault-induced aborts must never leak a
// committed-but-conflicting interleaving.
func TestFaultDifferentialSerializable(t *testing.T) {
	scenarios := append([]faultScenario{{name: "nofaults", fired: func(metrics.Summary) bool { return true }}},
		faultScenarios()...)
	for _, name := range realSchedulers {
		for _, sc := range scenarios {
			t.Run(name+"/"+sc.name, func(t *testing.T) {
				p := sched.DefaultParams()
				if name == "C2PL+M" {
					p.MPL = 6
				}
				cfg := machine.DefaultConfig()
				cfg.NumFiles = 6
				cfg.ArrivalRate = 0.25
				if name == "OPT" {
					cfg.ArrivalRate = 0.1
				}
				cfg.Duration = 300_000 * sim.Millisecond
				cfg.RestartDelay = sc.restartDelay
				cfg.Faults = sc.faults
				m, err := machine.New(cfg, sched.MustNew(name, p), randomGen{files: 6}, sim.NewRNG(101))
				if err != nil {
					t.Fatal(err)
				}
				rec := newFaultyRecorder(name)
				m.SetObserver(rec)
				sum := m.Run()
				if !sc.fired(sum) {
					t.Fatalf("scenario injected no faults (summary %+v)", sum)
				}
				if err := rec.CheckSerializable(); err != nil {
					t.Fatalf("non-serializable under %s: %v", sc.name, err)
				}
				if sum.Completions == 0 {
					t.Fatal("nothing completed under faults")
				}
			})
		}
	}
}

// TestFaultDrainReleasesAllLocks drains a fixed burst through crashes and
// message loss: once the machine is empty again, every lock, WTPG node and
// admission slot must have been given back — an abort path that leaks any of
// them would deadlock a long-running system.
func TestFaultDrainReleasesAllLocks(t *testing.T) {
	const txns = 30
	for _, name := range realSchedulers {
		t.Run(name, func(t *testing.T) {
			p := sched.DefaultParams()
			if name == "C2PL+M" {
				p.MPL = 6
			}
			s := sched.MustNew(name, p)
			cfg := machine.DefaultConfig()
			cfg.NumFiles = 6
			cfg.ArrivalRate = 0
			cfg.Duration = 3_000_000 * sim.Millisecond
			cfg.RestartDelay = 2 * sim.Second
			cfg.Faults = fault.Config{
				MTBF: 250 * sim.Second, MTTR: 5 * sim.Second,
				MsgLoss: 0.03, MsgTimeout: 5 * sim.Second, MsgRetries: 3,
			}
			m, err := machine.New(cfg, s, nil, sim.NewRNG(53))
			if err != nil {
				t.Fatal(err)
			}
			rec := newFaultyRecorder(name)
			m.SetObserver(rec)
			g := randomGen{files: 6}
			wrng := sim.NewRNG(53 * 13)
			for i := 0; i < txns; i++ {
				steps := g.Steps(wrng)
				m.Engine().Schedule(sim.Time(i)*8*sim.Second, func(sim.Time) { m.Submit(steps) })
			}
			sum := m.Run()
			if sum.Crashes == 0 && sum.MsgLost == 0 {
				t.Fatal("burst saw no faults — scenario too mild to test the abort paths")
			}
			if sum.Completions != txns || m.InFlight() != 0 {
				t.Fatalf("completions = %d (want %d), in flight = %d: burst did not drain", sum.Completions, txns, m.InFlight())
			}
			if err := rec.CheckSerializable(); err != nil {
				t.Fatalf("non-serializable: %v", err)
			}
			if lt, ok := s.(interface{ Locks() *lock.Table }); ok {
				if n := lt.Locks().LockedFiles(); n != 0 {
					t.Errorf("%d files still locked after drain — abort path leaks locks", n)
				}
			}
			if gr, ok := s.(interface{ Graph() *wtpg.Graph }); ok {
				if n := gr.Graph().Len(); n != 0 {
					t.Errorf("%d transactions still in the WTPG after drain", n)
				}
			}
			if ac, ok := s.(interface{ Active() int }); ok {
				if n := ac.Active(); n != 0 {
					t.Errorf("%d admission slots still held after drain", n)
				}
			}
		})
	}
}

// TestNODCViolatesSerializabilityUnderFaults: the differential baseline — the
// same harness that proves the real schedulers safe must still catch NODC
// interleaving conflicting writes, faults or not.
func TestNODCViolatesSerializabilityUnderFaults(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumFiles = 3
	cfg.ArrivalRate = 1.2
	cfg.Duration = 300_000 * sim.Millisecond
	cfg.RestartDelay = 2 * sim.Second
	cfg.Faults = fault.Config{MTBF: 150 * sim.Second, MTTR: 5 * sim.Second}
	m, err := machine.New(cfg, sched.MustNew("NODC", sched.DefaultParams()), randomGen{files: 3}, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	rec := history.New()
	m.SetObserver(rec)
	m.Run()
	if rec.CheckSerializable() == nil {
		t.Error("NODC under heavy write contention produced a serializable history — the harness is not discriminating")
	}
}
