package admit

import (
	"fmt"

	"batchsched/internal/obs/sli"
)

// TrialFunc runs one duration-bounded service trial at arrival rate lambda
// (typically replication-averaged) and returns its measures for SLO
// evaluation.
type TrialFunc func(lambda float64) (sli.Measures, error)

// Trial is one evaluated bisection probe.
type Trial struct {
	Lambda   float64      `json:"lambda"`
	Pass     bool         `json:"pass"`
	Measures sli.Measures `json:"measures"`
}

// CapacityResult is the sustained-TPS-at-SLO bisection outcome.
type CapacityResult struct {
	// Passed reports whether any probed rate met the SLO (false means even
	// lo failed; Lambda and SustainedTPS are then zero).
	Passed bool `json:"passed"`
	// Lambda is the largest VERIFIED passing arrival rate — a rate that was
	// actually run, never an untested midpoint.
	Lambda float64 `json:"lambda"`
	// SustainedTPS is the throughput measured at Lambda: the headline
	// open-system capacity metric.
	SustainedTPS float64 `json:"sustainedTps"`
	// Measures are the measures observed at Lambda.
	Measures sli.Measures `json:"measures"`
	// Trials is the full probe trail, in evaluation order.
	Trials []Trial `json:"trials"`
}

// SustainedTPS bisects the arrival rate over [lo, hi] to the largest rate
// whose service-mode trial still passes spec, to within tol. Like
// experiments.SolveLambdaAtRT, the returned rate is always one that was
// actually probed and passed — shrinking intervals never promote an
// untested midpoint. Sheds are part of the measures, so a spec with a
// shed-rate ceiling (sli.ServiceDefault) prevents the degenerate fixed
// point where shedding keeps the admitted p95 healthy at any offered load.
func SustainedTPS(spec sli.Spec, trial TrialFunc, lo, hi, tol float64) (CapacityResult, error) {
	if lo <= 0 || hi <= lo || tol <= 0 {
		return CapacityResult{}, fmt.Errorf("admit: SustainedTPS needs 0 < lo < hi and tol > 0 (lo=%g hi=%g tol=%g)", lo, hi, tol)
	}
	var res CapacityResult
	probe := func(lambda float64) (bool, sli.Measures, error) {
		m, err := trial(lambda)
		if err != nil {
			return false, m, fmt.Errorf("admit: trial at lambda=%g: %w", lambda, err)
		}
		pass, _ := spec.Evaluate(m)
		res.Trials = append(res.Trials, Trial{Lambda: lambda, Pass: pass, Measures: m})
		return pass, m, nil
	}
	pass, m, err := probe(lo)
	if err != nil {
		return res, err
	}
	if !pass {
		return res, nil // even the floor rate misses the SLO
	}
	res.Passed, res.Lambda, res.Measures = true, lo, m
	if pass, m, err = probe(hi); err != nil {
		return res, err
	} else if pass {
		res.Lambda, res.Measures = hi, m
		res.SustainedTPS = m.TPS
		return res, nil // the whole bracket passes
	}
	for hi-res.Lambda > tol {
		mid := (res.Lambda + hi) / 2
		pass, m, err := probe(mid)
		if err != nil {
			return res, err
		}
		if pass {
			res.Lambda, res.Measures = mid, m
		} else {
			hi = mid
		}
	}
	res.SustainedTPS = res.Measures.TPS
	return res, nil
}
