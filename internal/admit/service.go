package admit

import (
	"container/heap"
	"sort"

	"batchsched/internal/sim"
)

// Service is the admission queue plus overload control of one service run.
// It is driven single-threaded from the backend's control-node loop (the
// simulator's event handlers, the live backend's CN goroutine) and holds no
// locks — exactly like the schedulers.
type Service struct {
	pol   Policy
	q     itemHeap
	seq   uint64
	stats Stats

	// Sliding admission-sojourn window (ring buffer) and its sort scratch.
	soj      []sim.Time
	sojNext  int
	sojCount int
	scratch  []sim.Time

	overload bool
}

// NewService builds a service for the given (validated) policy.
func NewService(pol Policy) (*Service, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if pol.SojournWindow == 0 {
		pol.SojournWindow = 128
	}
	return &Service{
		pol:     pol,
		soj:     make([]sim.Time, pol.SojournWindow),
		scratch: make([]sim.Time, 0, pol.SojournWindow),
	}, nil
}

// Policy returns the active policy.
func (s *Service) Policy() Policy { return s.pol }

// Depth returns the current queue depth.
func (s *Service) Depth() int { return len(s.q) }

// Overloaded reports whether overload control is shedding batch arrivals.
func (s *Service) Overloaded() bool { return s.overload }

// Stats returns the cumulative counters.
func (s *Service) Stats() Stats { return s.stats }

// NoteEviction counts one in-flight eviction (performed by the backend).
func (s *Service) NoteEviction() { s.stats.Evictions++ }

// Arrive offers one arrival to the queue (Item.Arrived must be set; a zero
// Deadline is filled from the policy). The returned sheds are the
// transactions turned away as a consequence — the offered item itself
// (overload control, or queue full with nothing later-deadlined queued) or
// a displaced queued item. accepted reports whether the offered item is now
// queued.
func (s *Service) Arrive(it *Item) (sheds []Shed, accepted bool) {
	s.stats.Arrivals++
	if it.Deadline == 0 {
		it.Deadline = s.pol.Deadline(it.Class, it.Arrived)
	}
	if s.overload && it.Class == Batch {
		s.shed(it, ShedOverload)
		return []Shed{{Item: it, Reason: ShedOverload}}, false
	}
	if len(s.q) >= s.pol.MaxQueue {
		w := s.worst()
		if w == nil || !later(w, it) {
			// Nothing queued is worse: the arrival itself is the victim.
			s.shed(it, ShedQueueFull)
			return []Shed{{Item: it, Reason: ShedQueueFull}}, false
		}
		heap.Remove(&s.q, w.pos)
		s.shed(w, ShedQueueFull)
		sheds = append(sheds, Shed{Item: w, Reason: ShedQueueFull})
	}
	s.seq++
	it.seq = s.seq
	heap.Push(&s.q, it)
	s.stats.Enqueued++
	if len(s.q) > s.stats.DepthHighWater {
		s.stats.DepthHighWater = len(s.q)
	}
	return sheds, true
}

// Pop removes and returns the earliest-deadline queued item, recording its
// admission sojourn. ok is false on an empty queue.
func (s *Service) Pop(now sim.Time) (it *Item, ok bool) {
	if len(s.q) == 0 {
		return nil, false
	}
	it = heap.Pop(&s.q).(*Item)
	s.stats.Admitted[it.Class]++
	s.observeSojourn(now - it.Arrived)
	return it, true
}

// Expire sheds every queued item whose deadline has lapsed (no-op unless
// Policy.ShedOverdue).
func (s *Service) Expire(now sim.Time) []Shed {
	if !s.pol.ShedOverdue {
		return nil
	}
	var out []Shed
	for len(s.q) > 0 && s.q[0].Deadline < now {
		it := heap.Pop(&s.q).(*Item)
		s.shed(it, ShedDeadline)
		out = append(out, Shed{Item: it, Reason: ShedDeadline})
	}
	return out
}

// Drain sheds everything still queued (service shutdown).
func (s *Service) Drain(now sim.Time) []Shed {
	var out []Shed
	for len(s.q) > 0 {
		it := heap.Pop(&s.q).(*Item)
		s.shed(it, ShedDrain)
		out = append(out, Shed{Item: it, Reason: ShedDrain})
	}
	return out
}

// EndEpoch recomputes the overload-control state from the sliding sojourn
// p95 and the queue depth, with hysteresis: on at a p95 breach (or a
// nearly-full queue), off once the p95 recovers below 3/4 of the bound and
// the queue has drained below half.
func (s *Service) EndEpoch(now sim.Time) {
	p95 := s.P95Sojourn()
	full := len(s.q)*10 >= s.pol.MaxQueue*9
	breach := s.pol.OverloadP95 > 0 && p95 > s.pol.OverloadP95
	if !s.overload {
		s.overload = breach || full
		return
	}
	recovered := len(s.q)*2 < s.pol.MaxQueue &&
		(s.pol.OverloadP95 <= 0 || p95 < s.pol.OverloadP95*3/4)
	if recovered {
		s.overload = false
	}
}

// P95Sojourn returns the nearest-rank p95 of the sliding admission-sojourn
// window (0 with no samples).
func (s *Service) P95Sojourn() sim.Time {
	n := s.sojCount
	if n == 0 {
		return 0
	}
	s.scratch = append(s.scratch[:0], s.soj[:n]...)
	sort.Slice(s.scratch, func(i, j int) bool { return s.scratch[i] < s.scratch[j] })
	idx := (n*95+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return s.scratch[idx]
}

func (s *Service) observeSojourn(d sim.Time) {
	if d < 0 {
		d = 0
	}
	s.soj[s.sojNext] = d
	s.sojNext = (s.sojNext + 1) % len(s.soj)
	if s.sojCount < len(s.soj) {
		s.sojCount++
	}
}

func (s *Service) shed(it *Item, reason ShedReason) {
	s.stats.Shed[reason]++
	s.stats.ShedByClass[it.Class]++
}

// worst returns the queued item that sorts last (latest deadline, then
// latest seq) — the displacement victim on overflow. Linear scan: the queue
// is small (hundreds) and overflow is the exceptional path.
func (s *Service) worst() *Item {
	var w *Item
	for _, it := range s.q {
		if w == nil || later(it, w) {
			w = it
		}
	}
	return w
}

// later reports whether a sorts strictly after b in deadline-then-FIFO
// order.
func later(a, b *Item) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline > b.Deadline
	}
	return a.seq > b.seq
}

// itemHeap is a min-heap on (Deadline, seq).
type itemHeap []*Item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].Deadline != h[j].Deadline {
		return h[i].Deadline < h[j].Deadline
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos, h[j].pos = i, j
}
func (h *itemHeap) Push(x any) {
	it := x.(*Item)
	it.pos = len(*h)
	*h = append(*h, it)
}
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.pos = -1
	*h = old[:n-1]
	return it
}
