package admit

import (
	"fmt"
	"math"
	"testing"

	"batchsched/internal/obs/sli"
	"batchsched/internal/sim"
)

func testPolicy() Policy {
	p := DefaultPolicy()
	p.MaxQueue = 4
	p.SojournWindow = 8
	return p
}

func mustService(t *testing.T, p Policy) *Service {
	t.Helper()
	s, err := NewService(p)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return s
}

func arrive(t *testing.T, s *Service, id int64, class Class, at sim.Time) []Shed {
	t.Helper()
	sheds, _ := s.Arrive(&Item{ID: id, Class: class, Arrived: at})
	return sheds
}

func TestValidateRejectsBadPolicies(t *testing.T) {
	bad := []func(*Policy){
		func(p *Policy) { p.MPL = 0 },
		func(p *Policy) { p.Epoch = 0 },
		func(p *Policy) { p.MaxQueue = 0 },
		func(p *Policy) { p.InteractiveFraction = 1.5 },
		func(p *Policy) { p.QueueSLO[Batch] = -1 },
		func(p *Policy) { p.OverloadP95 = -1 },
	}
	for i, mutate := range bad {
		p := DefaultPolicy()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad policy validated", i)
		}
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Errorf("DefaultPolicy invalid: %v", err)
	}
}

func TestQueueOrdersByDeadlineThenFIFO(t *testing.T) {
	s := mustService(t, testPolicy())
	// Batch arrives first but carries the loose SLO; the later interactive
	// arrival has the earlier deadline and must pop first.
	arrive(t, s, 1, Batch, 0)
	arrive(t, s, 2, Interactive, 1*sim.Second)
	arrive(t, s, 3, Batch, 2*sim.Second)

	want := []int64{2, 1, 3} // interactive deadline 11s; batch deadlines 120s, 122s
	for i, w := range want {
		it, ok := s.Pop(5 * sim.Second)
		if !ok || it.ID != w {
			t.Fatalf("pop %d: got %v ok=%v, want id %d", i, it, ok, w)
		}
	}
	if _, ok := s.Pop(0); ok {
		t.Fatal("pop on empty queue returned ok")
	}
	st := s.Stats()
	if st.Admitted[Interactive] != 1 || st.Admitted[Batch] != 2 {
		t.Fatalf("admitted counters: %+v", st.Admitted)
	}
}

func TestFullQueueDisplacesLatestDeadline(t *testing.T) {
	s := mustService(t, testPolicy()) // MaxQueue 4
	for i := int64(1); i <= 4; i++ {
		if sheds := arrive(t, s, i, Batch, sim.Time(i)*sim.Second); len(sheds) != 0 {
			t.Fatalf("unexpected shed filling queue: %v", sheds)
		}
	}
	// An interactive arrival (tight deadline) displaces the latest-deadline
	// batch item, id 4.
	sheds := arrive(t, s, 5, Interactive, 10*sim.Second)
	if len(sheds) != 1 || sheds[0].Item.ID != 4 || sheds[0].Reason != ShedQueueFull {
		t.Fatalf("displacement: %+v", sheds)
	}
	if s.Depth() != 4 {
		t.Fatalf("depth after displacement: %d", s.Depth())
	}
	// A batch arrival with the latest deadline of all is itself the victim.
	sheds = arrive(t, s, 6, Batch, 20*sim.Second)
	if len(sheds) != 1 || sheds[0].Item.ID != 6 || sheds[0].Reason != ShedQueueFull {
		t.Fatalf("self-shed: %+v", sheds)
	}
	st := s.Stats()
	if st.Shed[ShedQueueFull] != 2 || st.DepthHighWater != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestExpireShedsOverdueOnly(t *testing.T) {
	p := testPolicy()
	s := mustService(t, p)
	arrive(t, s, 1, Interactive, 0)             // deadline 10s
	arrive(t, s, 2, Batch, 0)                   // deadline 120s
	arrive(t, s, 3, Interactive, 50*sim.Second) // deadline 60s

	sheds := s.Expire(61 * sim.Second) // ids 1 and 3 overdue
	if len(sheds) != 2 || sheds[0].Item.ID != 1 || sheds[1].Item.ID != 3 {
		t.Fatalf("expire: %+v", sheds)
	}
	for _, sh := range sheds {
		if sh.Reason != ShedDeadline {
			t.Fatalf("expire reason: %v", sh.Reason)
		}
	}
	if s.Depth() != 1 {
		t.Fatalf("depth after expire: %d", s.Depth())
	}

	// ShedOverdue off: expiry is a no-op.
	p.ShedOverdue = false
	s2 := mustService(t, p)
	arrive(t, s2, 1, Interactive, 0)
	if sheds := s2.Expire(NoDeadline - 1); len(sheds) != 0 {
		t.Fatalf("expire with ShedOverdue off shed %d", len(sheds))
	}
}

func TestZeroSLOMeansNoDeadline(t *testing.T) {
	p := testPolicy()
	p.QueueSLO[Batch] = 0
	s := mustService(t, p)
	arrive(t, s, 1, Batch, 0)
	if s.q[0].Deadline != NoDeadline {
		t.Fatalf("deadline: %v", s.q[0].Deadline)
	}
	if sheds := s.Expire(NoDeadline - 1); len(sheds) != 0 {
		t.Fatalf("NoDeadline item expired: %v", sheds)
	}
}

func TestDrainShedsEverything(t *testing.T) {
	s := mustService(t, testPolicy())
	for i := int64(1); i <= 3; i++ {
		arrive(t, s, i, Batch, 0)
	}
	sheds := s.Drain(5 * sim.Second)
	if len(sheds) != 3 || s.Depth() != 0 {
		t.Fatalf("drain: %d sheds, depth %d", len(sheds), s.Depth())
	}
	for _, sh := range sheds {
		if sh.Reason != ShedDrain {
			t.Fatalf("drain reason: %v", sh.Reason)
		}
	}
	if got := s.Stats().TotalShed(); got != 3 {
		t.Fatalf("TotalShed: %d", got)
	}
}

func TestOverloadHysteresis(t *testing.T) {
	p := testPolicy()
	p.MaxQueue = 100
	p.OverloadP95 = 30 * sim.Second
	s := mustService(t, p)

	// Healthy sojourns: no overload.
	for i := int64(0); i < 8; i++ {
		arrive(t, s, i, Batch, 0)
		s.Pop(1 * sim.Second)
	}
	s.EndEpoch(1 * sim.Second)
	if s.Overloaded() {
		t.Fatal("overloaded on healthy sojourns")
	}

	// Slow sojourns breach the p95: overload turns on, batch arrivals shed.
	for i := int64(10); i < 18; i++ {
		arrive(t, s, i, Batch, 0)
		s.Pop(60 * sim.Second)
	}
	s.EndEpoch(60 * sim.Second)
	if !s.Overloaded() {
		t.Fatal("not overloaded after p95 breach")
	}
	sheds, accepted := s.Arrive(&Item{ID: 100, Class: Batch, Arrived: 61 * sim.Second})
	if accepted || len(sheds) != 1 || sheds[0].Reason != ShedOverload {
		t.Fatalf("batch arrival under overload: accepted=%v sheds=%+v", accepted, sheds)
	}
	// Interactive arrivals still get in.
	if _, accepted := s.Arrive(&Item{ID: 101, Class: Interactive, Arrived: 61 * sim.Second}); !accepted {
		t.Fatal("interactive arrival shed under overload")
	}
	s.Pop(62 * sim.Second)

	// Recovery needs the p95 below 3/4 of the bound: refill the window with
	// fast sojourns.
	for i := int64(20); i < 28; i++ {
		arrive(t, s, i, Interactive, 100*sim.Second)
		s.Pop(100*sim.Second + 1*sim.Second)
	}
	s.EndEpoch(101 * sim.Second)
	if s.Overloaded() {
		t.Fatal("overload did not clear after recovery")
	}
}

func TestOverloadQueueFullTrigger(t *testing.T) {
	p := testPolicy()
	p.MaxQueue = 10
	p.OverloadP95 = 0 // sojourn trigger off; depth trigger only
	s := mustService(t, p)
	for i := int64(0); i < 9; i++ { // 9/10 = 90% full
		arrive(t, s, i, Batch, 0)
	}
	s.EndEpoch(0)
	if !s.Overloaded() {
		t.Fatal("not overloaded at 90% queue depth")
	}
	// Drain below half: recovers (no p95 bound set).
	for i := 0; i < 5; i++ {
		s.Pop(1 * sim.Second)
	}
	s.EndEpoch(1 * sim.Second)
	if s.Overloaded() {
		t.Fatal("overload did not clear after queue drained")
	}
}

func TestP95SojournNearestRank(t *testing.T) {
	p := testPolicy()
	p.SojournWindow = 100
	s := mustService(t, p)
	if got := s.P95Sojourn(); got != 0 {
		t.Fatalf("empty p95: %v", got)
	}
	// Sojourns 1..100 seconds: nearest-rank p95 is the 95th value.
	for i := 1; i <= 100; i++ {
		s.observeSojourn(sim.Time(i) * sim.Second)
	}
	if got := s.P95Sojourn(); got != 95*sim.Second {
		t.Fatalf("p95 of 1..100s: %v", got)
	}
	// Ring wrap: 50 more samples of 200s shift the p95 up.
	for i := 0; i < 50; i++ {
		s.observeSojourn(200 * sim.Second)
	}
	if got := s.P95Sojourn(); got != 200*sim.Second {
		t.Fatalf("p95 after wrap: %v", got)
	}
}

func TestPickClassFraction(t *testing.T) {
	p := DefaultPolicy()
	p.InteractiveFraction = 0.3
	rng := sim.NewRNG(42).Stream("class")
	n, interactive := 20000, 0
	for i := 0; i < n; i++ {
		if p.PickClass(rng) == Interactive {
			interactive++
		}
	}
	frac := float64(interactive) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("interactive fraction %.3f, want ~0.30", frac)
	}
	p.InteractiveFraction = 0
	if p.PickClass(rng) != Batch {
		t.Fatal("zero fraction drew interactive")
	}
}

// capSpec is a miniature service SLO for the bisection tests.
func capSpec() sli.Spec {
	f := func(v float64) *float64 { return &v }
	return sli.Spec{Name: "cap-test", Objectives: []sli.Objective{
		{Name: "tail", MaxP95RTSeconds: f(70)},
		{Name: "shed", MaxShedRate: f(0.02)},
	}}
}

// syntheticTrial models a saturating system with knee at capacity: below it
// the p95 is flat and nothing sheds, above it the p95 blows up and sheds
// grow with the excess.
func syntheticTrial(capacity float64, calls *[]float64) TrialFunc {
	return func(lambda float64) (sli.Measures, error) {
		*calls = append(*calls, lambda)
		m := sli.Measures{Scheduler: "GOW", Load: "synthetic", Lambda: lambda, Arrivals: 1000}
		if lambda <= capacity {
			m.TPS = lambda
			m.P95RTSeconds = 20
		} else {
			m.TPS = capacity
			m.P95RTSeconds = 500
			m.Sheds = 1000 * (lambda - capacity) / lambda
		}
		m.Completions = m.TPS * 100
		return m, nil
	}
}

func TestSustainedTPSBisection(t *testing.T) {
	var calls []float64
	res, err := SustainedTPS(capSpec(), syntheticTrial(3.0, &calls), 0.5, 8, 0.05)
	if err != nil {
		t.Fatalf("SustainedTPS: %v", err)
	}
	if !res.Passed {
		t.Fatal("bisection found no passing rate")
	}
	if res.Lambda > 3.0 || res.Lambda < 3.0-0.05 {
		t.Fatalf("lambda %g, want within tol below capacity 3.0", res.Lambda)
	}
	if res.SustainedTPS != res.Measures.TPS {
		t.Fatalf("SustainedTPS %g != Measures.TPS %g", res.SustainedTPS, res.Measures.TPS)
	}
	// Every reported trial was actually run, and the result is one of them.
	if len(res.Trials) != len(calls) {
		t.Fatalf("%d trials recorded, %d run", len(res.Trials), len(calls))
	}
	found := false
	for _, tr := range res.Trials {
		if tr.Lambda == res.Lambda {
			if !tr.Pass {
				t.Fatalf("result lambda %g recorded as failing", res.Lambda)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("result lambda %g was never probed (untested midpoint)", res.Lambda)
	}
}

func TestSustainedTPSWholeBracketPasses(t *testing.T) {
	var calls []float64
	res, err := SustainedTPS(capSpec(), syntheticTrial(100, &calls), 1, 4, 0.1)
	if err != nil {
		t.Fatalf("SustainedTPS: %v", err)
	}
	if !res.Passed || res.Lambda != 4 {
		t.Fatalf("whole-bracket pass: %+v", res)
	}
	if len(calls) != 2 { // lo and hi only; no bisection needed
		t.Fatalf("probe count %d, want 2", len(calls))
	}
}

func TestSustainedTPSFloorFails(t *testing.T) {
	var calls []float64
	res, err := SustainedTPS(capSpec(), syntheticTrial(0.1, &calls), 1, 4, 0.1)
	if err != nil {
		t.Fatalf("SustainedTPS: %v", err)
	}
	if res.Passed || res.Lambda != 0 || res.SustainedTPS != 0 {
		t.Fatalf("floor-fail result: %+v", res)
	}
	if len(calls) != 1 {
		t.Fatalf("probe count %d, want 1 (stop at failing floor)", len(calls))
	}
}

func TestSustainedTPSRejectsBadBracket(t *testing.T) {
	trial := func(float64) (sli.Measures, error) { return sli.Measures{}, nil }
	for _, c := range [][3]float64{{0, 1, 0.1}, {2, 1, 0.1}, {1, 2, 0}} {
		if _, err := SustainedTPS(capSpec(), trial, c[0], c[1], c[2]); err == nil {
			t.Errorf("bracket %v accepted", c)
		}
	}
}

func TestSustainedTPSTrialError(t *testing.T) {
	boom := func(float64) (sli.Measures, error) { return sli.Measures{}, fmt.Errorf("backend exploded") }
	if _, err := SustainedTPS(capSpec(), boom, 1, 2, 0.1); err == nil {
		t.Fatal("trial error swallowed")
	}
}

func TestShedRateGatesCapacity(t *testing.T) {
	// A trial whose p95 stays healthy because shedding absorbs the excess:
	// without the shed-rate bound the bisection would run away to hi.
	trial := func(lambda float64) (sli.Measures, error) {
		m := sli.Measures{Scheduler: "GOW", Load: "synthetic", Lambda: lambda,
			Arrivals: 1000, TPS: math.Min(lambda, 2), P95RTSeconds: 20, Completions: 100}
		if lambda > 2 {
			m.Sheds = 1000 * (lambda - 2) / lambda
		}
		return m, nil
	}
	res, err := SustainedTPS(capSpec(), trial, 0.5, 8, 0.05)
	if err != nil {
		t.Fatalf("SustainedTPS: %v", err)
	}
	if res.Lambda > 2.1 {
		t.Fatalf("shed-rate bound did not gate: lambda %g", res.Lambda)
	}
}
