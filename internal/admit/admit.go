// Package admit is the streaming admission subsystem: it turns the
// closed-batch scheduler core into an open system. Arrivals from an
// unbounded stream enter a bounded, deadline-ordered admission queue with
// per-class sojourn SLOs; an epoch-batched loop (DGCC-style — graph
// construction decoupled from execution) drains the queue into the
// scheduler's bounded in-flight window (MPL) as completions free slots,
// admitting into the live WTPG incrementally; and backpressure policy sheds
// load when the queue overflows, deadlines lapse, or the observed admission
// sojourn p95 exceeds policy. Both backends (machine and live) drive the
// same Service object from their control-node loop, so policy behavior is
// identical under virtual and wall-clock time.
//
// The headline open-system metric is sustained-TPS-at-SLO (capacity.go): the
// largest arrival rate at which a duration-bounded service run still passes
// its SLO spec, found by bisection.
package admit

import (
	"fmt"
	"math"

	"batchsched/internal/sim"
)

// Class is a transaction service class. Interactive transactions carry the
// tight admission SLO; batch transactions the loose one — and batch is what
// overload control sheds first.
type Class uint8

const (
	// Batch is the default class (bulk work, loose admission SLO).
	Batch Class = iota
	// Interactive is the latency-sensitive class (tight admission SLO).
	Interactive
	// NumClasses sizes per-class arrays.
	NumClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Batch:
		return "batch"
	case Interactive:
		return "interactive"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ShedReason says why a transaction was turned away.
type ShedReason uint8

const (
	// ShedQueueFull: the bounded admission queue was full and the victim had
	// the latest deadline.
	ShedQueueFull ShedReason = iota
	// ShedDeadline: the transaction's admission deadline lapsed while
	// queued.
	ShedDeadline
	// ShedOverload: overload control was active (admission-sojourn p95 over
	// policy) and the arrival was batch-class.
	ShedOverload
	// ShedDrain: the service was shutting down with the transaction still
	// queued.
	ShedDrain
	// NumShedReasons sizes per-reason arrays.
	NumShedReasons
)

// String names the reason.
func (r ShedReason) String() string {
	switch r {
	case ShedQueueFull:
		return "queue-full"
	case ShedDeadline:
		return "deadline"
	case ShedOverload:
		return "overload"
	case ShedDrain:
		return "drain"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// NoDeadline is the deadline of a class with no admission SLO: such items
// sort last and never expire.
const NoDeadline = sim.Time(math.MaxInt64)

// Policy is the admission/backpressure policy of one service run.
type Policy struct {
	// MPL caps concurrently admitted (in-flight) transactions — the bounded
	// window the epoch loop fills as completions free slots. Required > 0:
	// an open system without a window bound has no backpressure point.
	MPL int
	// Epoch is the admission epoch: queued arrivals are batch-admitted at
	// this cadence (completions additionally retry scheduler-refused
	// admissions immediately, as in the closed path).
	Epoch sim.Time
	// MaxQueue bounds the admission queue. A full queue sheds the
	// latest-deadline transaction (the arrival itself, if nothing queued is
	// later).
	MaxQueue int
	// InteractiveFraction is the probability an arrival is interactive
	// (drawn from the backend's "class" RNG stream).
	InteractiveFraction float64
	// QueueSLO is the per-class admission-sojourn target: a transaction's
	// admission deadline is its arrival time plus its class's SLO. Zero
	// means no deadline for that class.
	QueueSLO [NumClasses]sim.Time
	// ShedOverdue sheds queued transactions whose deadline has lapsed at
	// each epoch boundary (instead of admitting them late).
	ShedOverdue bool
	// OverloadP95 triggers overload control: when the p95 admission sojourn
	// over the sliding sample window exceeds it, new batch-class arrivals
	// are shed until the p95 recovers below 3/4 of it. 0 disables the
	// sojourn trigger (the queue-full trigger below still applies).
	OverloadP95 sim.Time
	// EvictOnOverload additionally evicts one blocked batch-class
	// transaction from the in-flight window per overloaded epoch — removing
	// it from the live WTPG and releasing its locks — to relieve contention,
	// not just arrival pressure.
	EvictOnOverload bool
	// SojournWindow is the sliding sample window for the sojourn p95
	// (default 128).
	SojournWindow int
}

// DefaultPolicy returns a serviceable starting policy: an 8-wide window,
// 500 ms epochs, a 256-entry queue, 20% interactive traffic with a 10 s
// admission SLO (batch: 120 s), overdue shedding on, and overload control
// at a 30 s sojourn p95.
func DefaultPolicy() Policy {
	return Policy{
		MPL:                 8,
		Epoch:               500 * sim.Millisecond,
		MaxQueue:            256,
		InteractiveFraction: 0.2,
		QueueSLO:            [NumClasses]sim.Time{Batch: 120 * sim.Second, Interactive: 10 * sim.Second},
		ShedOverdue:         true,
		OverloadP95:         30 * sim.Second,
		SojournWindow:       128,
	}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	switch {
	case p.MPL <= 0:
		return fmt.Errorf("admit: Policy.MPL must be > 0 (the in-flight window bound), got %d", p.MPL)
	case p.Epoch <= 0:
		return fmt.Errorf("admit: Policy.Epoch must be > 0, got %v", p.Epoch)
	case p.MaxQueue <= 0:
		return fmt.Errorf("admit: Policy.MaxQueue must be > 0, got %d", p.MaxQueue)
	case p.InteractiveFraction < 0 || p.InteractiveFraction > 1:
		return fmt.Errorf("admit: Policy.InteractiveFraction must be in [0, 1], got %g", p.InteractiveFraction)
	case p.QueueSLO[Batch] < 0 || p.QueueSLO[Interactive] < 0:
		return fmt.Errorf("admit: Policy.QueueSLO must be >= 0")
	case p.OverloadP95 < 0:
		return fmt.Errorf("admit: Policy.OverloadP95 must be >= 0, got %v", p.OverloadP95)
	case p.SojournWindow < 0:
		return fmt.Errorf("admit: Policy.SojournWindow must be >= 0, got %d", p.SojournWindow)
	}
	return nil
}

// Deadline computes a class's admission deadline for an arrival at now.
func (p Policy) Deadline(class Class, now sim.Time) sim.Time {
	slo := p.QueueSLO[class]
	if slo <= 0 {
		return NoDeadline
	}
	return now + slo
}

// PickClass draws an arrival's class from the policy's interactive mix.
func (p Policy) PickClass(rng *sim.RNG) Class {
	if p.InteractiveFraction > 0 && rng.Float64() < p.InteractiveFraction {
		return Interactive
	}
	return Batch
}

// Item is one queued arrival.
type Item struct {
	// ID is the transaction id (backend-assigned).
	ID int64
	// Class is the service class.
	Class Class
	// Arrived is the arrival time; Deadline the admission deadline
	// (Policy.Deadline fills it on Arrive when zero).
	Arrived  sim.Time
	Deadline sim.Time
	// Payload carries the backend's transaction wrapper through the queue.
	Payload any

	seq uint64 // FIFO tiebreak within equal deadlines
	pos int    // heap index
}

// Shed pairs a shed item with its reason.
type Shed struct {
	Item   *Item
	Reason ShedReason
}

// Stats are the cumulative service counters.
type Stats struct {
	// Arrivals counts every offered transaction; Enqueued those that
	// entered the queue.
	Arrivals int
	Enqueued int
	// Admitted counts queue departures into the window, per class.
	Admitted [NumClasses]int
	// Shed counts turned-away transactions per reason and per class.
	Shed        [NumShedReasons]int
	ShedByClass [NumClasses]int
	// Evictions counts in-flight transactions evicted by overload control
	// (backends report them via NoteEviction).
	Evictions int
	// DepthHighWater is the maximum queue depth observed.
	DepthHighWater int
}

// TotalAdmitted sums admissions over classes.
func (s Stats) TotalAdmitted() int {
	n := 0
	for _, v := range s.Admitted {
		n += v
	}
	return n
}

// TotalShed sums sheds over reasons.
func (s Stats) TotalShed() int {
	n := 0
	for _, v := range s.Shed {
		n += v
	}
	return n
}

// EpochStats is one epoch's service snapshot, handed to the backend's epoch
// hook (per-epoch SLI ledger lines, streaming gauges).
type EpochStats struct {
	// Epoch numbers epochs from 1; Start/End bracket it.
	Epoch int
	Start sim.Time
	End   sim.Time
	// Arrivals, Admitted, Completions, Sheds and Evictions are counts
	// within the epoch.
	Arrivals    int
	Admitted    int
	Completions int
	Sheds       int
	Evictions   int
	// QueueDepth and Active are the depths at epoch end.
	QueueDepth int
	Active     int
	// MeanRT/P95RT digest the epoch's completions (0 when none).
	MeanRT sim.Time
	P95RT  sim.Time
	// P95Sojourn is the sliding-window admission-sojourn p95 at epoch end;
	// Overloaded the overload-control state.
	P95Sojourn sim.Time
	Overloaded bool
	// Cum is the cumulative counter snapshot at epoch end.
	Cum Stats
}
