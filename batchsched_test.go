package batchsched

import (
	"strings"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArrivalRate = 0.4
	cfg.Duration = 150_000 * Millisecond
	sum, err := Run(cfg, "LOW", DefaultParams(), NewExp1Workload(16), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completions == 0 {
		t.Fatal("no completions")
	}
	if _, err := Run(cfg, "nonsense", DefaultParams(), NewExp1Workload(16), 1); err == nil {
		t.Error("unknown scheduler must error")
	}
	bad := cfg
	bad.NumNodes = 0
	if _, err := Run(bad, "LOW", DefaultParams(), NewExp1Workload(16), 1); err == nil {
		t.Error("invalid config must error")
	}
}

func TestFacadeRunChecked(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArrivalRate = 0.8
	cfg.Duration = 200_000 * Millisecond
	if _, err := RunChecked(cfg, "GOW", DefaultParams(), NewExp1Workload(8), 2); err != nil {
		t.Errorf("GOW must be serializable: %v", err)
	}
	if _, err := RunChecked(cfg, "NODC", DefaultParams(), NewExp1Workload(8), 2); err == nil {
		t.Error("NODC under contention should fail the serializability check")
	}
}

func TestFacadeSchedulersList(t *testing.T) {
	s := Schedulers()
	if len(s) != 9 || s[0] != "NODC" || s[7] != "2PL" || s[8] != "LOW-LB" {
		t.Errorf("Schedulers = %v", s)
	}
	s[0] = "mutated"
	if Schedulers()[0] != "NODC" {
		t.Error("Schedulers must return a copy")
	}
}

func TestFacadeFixedWorkload(t *testing.T) {
	gen, err := NewFixedWorkload("Xr(F1:1)->w(F1:0.2)", map[string]FileID{"F1": 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ArrivalRate = 0.1
	cfg.Duration = 100_000 * Millisecond
	sum, err := Run(cfg, "ASL", DefaultParams(), gen, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completions == 0 {
		t.Fatal("fixed workload produced nothing")
	}
	if _, err := NewFixedWorkload("bogus", nil); err == nil {
		t.Error("bad pattern must error")
	}
	if _, err := NewFixedWorkload("w(A:1)", nil); err == nil {
		t.Error("missing binding must error")
	}
}

func TestFacadeArtifacts(t *testing.T) {
	ids := ArtifactIDs()
	if len(ids) != 12 {
		t.Fatalf("ArtifactIDs = %v, want the paper's 10 artifacts + exp4 + phases", ids)
	}
	out, err := RegenerateArtifact("table5", Options{Duration: 60_000 * Millisecond, SolverTol: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "GOW") || !strings.Contains(out, "LOW") {
		t.Errorf("table5 output missing schedulers:\n%s", out)
	}
	if _, err := RegenerateArtifact("fig99", Options{}); err == nil {
		t.Error("unknown artifact must error")
	}
}

func TestFacadeWithCostError(t *testing.T) {
	gen := WithCostError(NewExp1Workload(16), 2.0)
	cfg := DefaultConfig()
	cfg.ArrivalRate = 0.3
	cfg.Duration = 100_000 * Millisecond
	if _, err := Run(cfg, "GOW", DefaultParams(), gen, 1); err != nil {
		t.Fatal(err)
	}
}
