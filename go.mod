module batchsched

go 1.22
