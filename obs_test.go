package batchsched

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files from current output")

// obsConfig is a scaled-down Experiment-1 operating point: big enough to
// exercise blocking, delaying and multi-step execution, small enough for the
// golden trace to stay reviewable.
func obsConfig(duration Time) Config {
	cfg := DefaultConfig()
	cfg.ArrivalRate = 0.6
	cfg.NumFiles = 16
	cfg.DD = 1
	cfg.Duration = duration
	return cfg
}

// TestObservedSummaryMatchesRun: attaching the observability layer must not
// perturb the simulation — the summary must stay deeply equal to the plain
// Run's across the experiments' operating regimes (Exp1 blocking workload,
// Exp2 hot-set, Exp3 estimation error, Exp4 faults).
func TestObservedSummaryMatchesRun(t *testing.T) {
	type tc struct {
		name  string
		sched string
		gen   func() Generator
		cfg   Config
	}
	exp1 := func() Generator { return NewExp1Workload(16) }
	exp2 := func() Generator { return NewExp2Workload() }
	exp3 := func() Generator { return WithCostError(NewExp1Workload(16), 1.0) }

	faulty := obsConfig(200 * Second)
	faulty.Faults = FaultConfig{
		MTBF: 60 * Second, MTTR: 5 * Second,
		MsgLoss: 0.02, MsgTimeout: 5 * Second, MsgRetries: 2,
	}

	cases := []tc{
		{"exp1-GOW", "GOW", exp1, obsConfig(200 * Second)},
		{"exp1-LOW", "LOW", exp1, obsConfig(200 * Second)},
		{"exp1-C2PL", "C2PL", exp1, obsConfig(200 * Second)},
		{"exp2-GOW", "GOW", exp2, obsConfig(200 * Second)},
		{"exp3-LOW", "LOW", exp3, obsConfig(200 * Second)},
		{"exp4-C2PL-faults", "C2PL", exp1, faulty},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plain, err := Run(c.cfg, c.sched, DefaultParams(), c.gen(), 1)
			if err != nil {
				t.Fatal(err)
			}
			ob := NewObs()
			observed, err := RunObserved(c.cfg, c.sched, DefaultParams(), c.gen(), 1, ob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, observed) {
				t.Errorf("observed summary differs from plain run:\nplain:    %+v\nobserved: %+v", plain, observed)
			}
			if len(ob.Spans()) == 0 {
				t.Error("observer recorded no spans")
			}
		})
	}
}

// TestObservedOutputsDeterministic: two runs with the same seed must export
// byte-identical Chrome traces, metrics CSVs and audit logs.
func TestObservedOutputsDeterministic(t *testing.T) {
	render := func() (trace, csv, audit []byte) {
		ob := NewObs()
		if _, err := RunObserved(obsConfig(200*Second), "GOW", DefaultParams(), NewExp1Workload(16), 1, ob); err != nil {
			t.Fatal(err)
		}
		var tb, cb, ab bytes.Buffer
		if err := ob.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		if err := ob.WriteMetricsCSV(&cb); err != nil {
			t.Fatal(err)
		}
		if err := ob.WriteAuditJSONL(&ab); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), cb.Bytes(), ab.Bytes()
	}
	t1, c1, a1 := render()
	t2, c2, a2 := render()
	if !bytes.Equal(t1, t2) {
		t.Error("Chrome traces differ between identical runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("metrics CSVs differ between identical runs")
	}
	if !bytes.Equal(a1, a2) {
		t.Error("audit logs differ between identical runs")
	}
	if len(a1) == 0 {
		t.Error("GOW run produced an empty audit log")
	}
}

// TestLOWAuditExports: LOW's audit must serialize even when contention makes
// some E(q)/E(p) estimates deadlocked (+Inf, which JSON cannot encode; the
// recorder maps them to -1). Regression test: this exact point used to make
// WriteAuditJSONL fail with "json: unsupported value: +Inf".
func TestLOWAuditExports(t *testing.T) {
	ob := NewObs()
	if _, err := RunObserved(obsConfig(200*Second), "LOW", DefaultParams(), NewExp1Workload(16), 1, ob); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ob.WriteAuditJSONL(&buf); err != nil {
		t.Fatalf("audit export failed: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("LOW run produced an empty audit log")
	}
}

// TestChromeTraceGolden pins the exported Chrome trace of a small GOW run
// against testdata. Regenerate after an intentional format or
// instrumentation change with:
//
//	go test -run TestChromeTraceGolden -update-golden .
func TestChromeTraceGolden(t *testing.T) {
	ob := NewObs()
	if _, err := RunObserved(obsConfig(60*Second), "GOW", DefaultParams(), NewExp1Workload(16), 1, ob); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ob.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exp1_gow_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace deviates from %s (%d bytes vs %d); rerun with -update-golden if the change is intentional",
			path, buf.Len(), len(want))
	}
}

// TestPhaseBreakdownOrdering: the per-phase decomposition must reproduce the
// paper's qualitative story at the Exp.1 operating point — C2PL transactions
// spend far longer lock-waiting than GOW's or LOW's (Fig. 8/9 is driven by
// that blocking), and NODC, which ignores conflicts, never waits at all.
func TestPhaseBreakdownOrdering(t *testing.T) {
	lockWait := func(sched string) float64 {
		ob := NewObs()
		ob.SetSampleInterval(0) // samples are irrelevant here
		if _, err := RunObserved(obsConfig(400*Second), sched, DefaultParams(), NewExp1Workload(16), 1, ob); err != nil {
			t.Fatal(err)
		}
		for _, ph := range ob.PhaseTotals("txn") {
			if ph.Name == "lock-wait" {
				return ph.Total.Seconds()
			}
		}
		return 0
	}
	c2pl, gow, low, nodc := lockWait("C2PL"), lockWait("GOW"), lockWait("LOW"), lockWait("NODC")
	if nodc != 0 {
		t.Errorf("NODC recorded %g s of lock-wait, want none", nodc)
	}
	if gow <= 0 || low <= 0 {
		t.Errorf("GOW/LOW recorded no lock-wait at a contended point (gow=%g, low=%g)", gow, low)
	}
	if c2pl <= gow || c2pl <= low {
		t.Errorf("C2PL lock-wait (%g s) should dominate GOW (%g s) and LOW (%g s)", c2pl, gow, low)
	}
}
