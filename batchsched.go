// Package batchsched is a simulation library for concurrency-control
// scheduling of batch transactions on Shared-Nothing parallel database
// machines, reproducing Ohmori, Kitsuregawa and Tanaka, "Scheduling Batch
// Transactions on Shared-Nothing Parallel Database Machines: Effects of
// Concurrency and Parallelism" (ICDE 1991).
//
// It provides:
//
//   - a discrete-event model of a Shared-Nothing machine: one control node
//     with a FCFS CPU and NumNodes data-processing nodes serving
//     file-scanning cohorts round-robin, with declustered data placement;
//   - the paper's seven schedulers — NODC, ASL, C2PL, C2PL+M, OPT, and the
//     WTPG-based GOW and LOW — plus two extensions: traditional strict 2PL
//     and the load-balancing LOW-LB;
//   - the paper's workloads (Experiments 1-3) and an estimation-error
//     model;
//   - a harness that regenerates every table and figure of the paper's
//     evaluation (see RegenerateArtifact and cmd/paperbench).
//
// Quickstart:
//
//	cfg := batchsched.DefaultConfig()
//	cfg.ArrivalRate = 0.6
//	sum, err := batchsched.Run(cfg, "LOW", batchsched.DefaultParams(),
//	    batchsched.NewExp1Workload(16), 1)
//	fmt.Println(sum.MeanRT, sum.TPS)
package batchsched

import (
	"fmt"
	"io"

	"batchsched/internal/admit"
	"batchsched/internal/engine/live"
	"batchsched/internal/experiments"
	"batchsched/internal/fault"
	"batchsched/internal/history"
	"batchsched/internal/machine"
	"batchsched/internal/metrics"
	"batchsched/internal/model"
	"batchsched/internal/obs"
	"batchsched/internal/obs/stream"
	"batchsched/internal/sched"
	"batchsched/internal/sim"
	"batchsched/internal/trace"
	"batchsched/internal/workload"
)

// Re-exported core types. See the internal packages' documentation for
// field-level detail.
type (
	// Config is the machine and measurement configuration (paper Table 1).
	Config = machine.Config
	// Params is the scheduler cost/policy configuration (paper Table 1).
	Params = sched.Params
	// Summary is a run's digested metrics.
	Summary = metrics.Summary
	// Generator produces the steps of successive transactions.
	Generator = machine.Generator
	// Time is virtual time in microseconds (1000 per paper "clock").
	Time = sim.Time
	// Step is one file-scanning operation of a batch.
	Step = model.Step
	// FileID identifies a file (the locking granule).
	FileID = model.FileID
	// Mode is a lock mode (S or X).
	Mode = model.Mode
	// Options scales a paper-artifact regeneration.
	Options = experiments.Options
	// Txn is a batch transaction.
	Txn = model.Txn
	// FaultConfig carries the fault-injection knobs (Config.Faults); the
	// zero value is the paper's failure-free machine.
	FaultConfig = fault.Config
	// Obs is the virtual-time observability recorder (see RunObserved and
	// internal/obs): spans, metrics time-series, and the scheduler decision
	// audit, with Chrome-trace / CSV / HTML exporters.
	Obs = obs.Observer
	// StreamSet is the wall-clock streaming instrument registry (see
	// RunLiveTelemetry and internal/obs/stream): sliding-window rates,
	// gauges, and quantile sketches rendered as Prometheus text by the
	// /metrics endpoint (internal/obs/serve).
	StreamSet = stream.Set
)

// Lock modes and time units.
const (
	S           = model.S
	X           = model.X
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultConfig returns the paper's Table-1 machine parameters.
func DefaultConfig() Config { return machine.DefaultConfig() }

// DefaultParams returns the paper's Table-1 scheduler parameters (K = 2).
func DefaultParams() Params { return sched.DefaultParams() }

// Schedulers lists the scheduler names accepted by Run: the paper's lineup
// NODC, ASL, GOW, LOW, C2PL, C2PL+M, OPT, plus the traditional strict-2PL
// baseline "2PL" (an extension; see DESIGN.md).
func Schedulers() []string { return append([]string(nil), sched.Names...) }

// Run simulates one configuration with the named scheduler and workload
// generator, returning the metrics summary. Each call is deterministic in
// the seed.
func Run(cfg Config, scheduler string, params Params, gen Generator, seed int64) (Summary, error) {
	s, err := sched.New(scheduler, params)
	if err != nil {
		return Summary{}, err
	}
	m, err := machine.New(cfg, s, gen, sim.NewRNG(seed))
	if err != nil {
		return Summary{}, err
	}
	return m.Run(), nil
}

// RunStats reports how the engine itself executed a run (as opposed to what
// the simulated machine did): calendar events dispatched, the safe-wave
// statistics of the sharded-calendar engine (zeros on the merged-calendar
// path), and each DPN's busy fraction of the virtual span — the per-shard
// utilization that makes lookahead starvation visible.
type RunStats struct {
	Events           uint64
	Waves            uint64
	WaveMembers      uint64
	ShardUtilization []float64
}

// RunWithStats is Run, additionally returning the engine's execution stats.
func RunWithStats(cfg Config, scheduler string, params Params, gen Generator, seed int64) (Summary, RunStats, error) {
	s, err := sched.New(scheduler, params)
	if err != nil {
		return Summary{}, RunStats{}, err
	}
	m, err := machine.New(cfg, s, gen, sim.NewRNG(seed))
	if err != nil {
		return Summary{}, RunStats{}, err
	}
	sum := m.Run()
	var st RunStats
	st.Events = m.Engine().Executed()
	st.Waves, st.WaveMembers = m.WaveStats()
	st.ShardUtilization = m.ShardUtilization(nil)
	return sum, st, nil
}

// RunChecked is Run with conflict-serializability verification: it records
// the run's committed history and returns an error if the serialization
// graph has a cycle. NODC is expected to fail this check under contention.
func RunChecked(cfg Config, scheduler string, params Params, gen Generator, seed int64) (Summary, error) {
	s, err := sched.New(scheduler, params)
	if err != nil {
		return Summary{}, err
	}
	m, err := machine.New(cfg, s, gen, sim.NewRNG(seed))
	if err != nil {
		return Summary{}, err
	}
	rec := history.New()
	if scheduler == "OPT" {
		// OPT is deferred-update: writes install at commit time, and the
		// serializability check must order them accordingly.
		rec = history.NewDeferredWrites()
	}
	m.SetObserver(rec)
	sum := m.Run()
	if err := rec.CheckSerializable(); err != nil {
		return sum, fmt.Errorf("batchsched: %s produced a non-serializable history: %w", scheduler, err)
	}
	return sum, nil
}

// CI is the 95% confidence half-width of headline metrics across
// replications.
type CI = metrics.CI

// RunReplicated runs reps independent replications (seeds seed, seed+1,
// ...), returning their averaged summary and Student-t 95% confidence
// half-widths on mean response time and throughput.
func RunReplicated(cfg Config, scheduler string, params Params, gen Generator, seed int64, reps int) (Summary, CI, error) {
	if reps < 1 {
		reps = 1
	}
	sums := make([]Summary, 0, reps)
	for r := 0; r < reps; r++ {
		sum, err := Run(cfg, scheduler, params, gen, seed+int64(r))
		if err != nil {
			return Summary{}, CI{}, err
		}
		sums = append(sums, sum)
	}
	avg, ci := metrics.AverageWithCI(sums)
	return avg, ci, nil
}

// NewObs returns an enabled observability recorder, ready for RunObserved.
func NewObs() *Obs { return obs.New() }

// RunObserved is Run with the full observability layer attached: ob records
// lifecycle/CN/DPN spans over virtual time, samples the metrics registry on
// its configured interval, and — for GOW and LOW — collects the scheduler
// decision audit. After the run, export with ob.WriteChromeTrace,
// ob.WriteMetricsCSV, ob.WriteAuditJSONL or ob.WriteHTMLReport. The
// instrumentation is passive: the returned summary is identical to Run's
// for the same arguments. A nil ob degrades to exactly Run.
func RunObserved(cfg Config, scheduler string, params Params, gen Generator, seed int64, ob *Obs) (Summary, error) {
	s, err := sched.New(scheduler, params)
	if err != nil {
		return Summary{}, err
	}
	m, err := machine.New(cfg, s, gen, sim.NewRNG(seed))
	if err != nil {
		return Summary{}, err
	}
	m.SetObs(ob)
	return m.Run(), nil
}

// RunTraced is Run with a JSONL execution trace (one event per step
// completion, commit and restart) streamed to w. See internal/trace for the
// record format.
func RunTraced(cfg Config, scheduler string, params Params, gen Generator, seed int64, w io.Writer) (Summary, error) {
	s, err := sched.New(scheduler, params)
	if err != nil {
		return Summary{}, err
	}
	m, err := machine.New(cfg, s, gen, sim.NewRNG(seed))
	if err != nil {
		return Summary{}, err
	}
	tw := trace.NewWriter(w)
	m.SetObserver(tw)
	sum := m.Run()
	if err := tw.Flush(); err != nil {
		return sum, fmt.Errorf("batchsched: writing trace: %w", err)
	}
	return sum, nil
}

// NewExp1Workload returns the paper's Experiment-1 generator (Pattern1 over
// numFiles files).
func NewExp1Workload(numFiles int) Generator { return workload.NewExp1(numFiles) }

// NewExp2Workload returns the paper's Experiment-2 generator (Pattern2 over
// 8 read-only and 8 hot files).
func NewExp2Workload() Generator { return workload.NewExp2() }

// NewBatchScanWorkload returns the whole-file batch-scan generator: each
// transaction X-locks and scans one whole file of `objects` objects, then
// rewrites a second distinct file of the same size — the heavy batch
// workload the paper's introduction motivates, and the one the tracked Run
// benchmarks measure at full declustering.
func NewBatchScanWorkload(numFiles int, objects float64) Generator {
	return workload.NewBatchScan(numFiles, objects)
}

// WithCostError wraps a workload with the Experiment-3 estimation-error
// model: declared costs become C0*(1+x), x ~ N(0, sigma²), clamped at 0.
func WithCostError(gen Generator, sigma float64) Generator {
	return workload.WithError{Gen: gen.(workload.Generator), Sigma: sigma}
}

// NewMixedWorkload interleaves short transactions (one tiny step of
// shortCost objects on a random file, S-locked reads) with batches from the
// given generator — the OLTP mix the paper's introduction motivates.
// shortFraction is the probability an arrival is short.
func NewMixedWorkload(batch Generator, numFiles int, shortFraction, shortCost float64) Generator {
	return workload.Mixed{
		Batch:         batch.(workload.Generator),
		NumFiles:      numFiles,
		ShortFraction: shortFraction,
		ShortCost:     shortCost,
	}
}

// WithHeavyTail wraps a workload with a per-transaction unit-mean Pareto
// cost multiplier of shape alpha (> 1; smaller = heavier tail), capped at
// 100x: most transactions shrink slightly, a few grow enormously — the
// heavy-tailed cost mix of real batch traffic.
func WithHeavyTail(gen Generator, alpha float64) Generator {
	return workload.NewHeavyTailed(gen.(workload.Generator), alpha, 0)
}

// Arrivals is an open arrival process (Config.Arrivals and service mode):
// nil keeps the paper's homogeneous Poisson at Config.ArrivalRate. See
// NewPoissonArrivals, NewDiurnalArrivals, NewBurstArrivals and
// NewTraceArrivals.
type Arrivals = workload.Arrivals

// NewPoissonArrivals returns the paper's homogeneous Poisson arrival
// process at rate transactions per second.
func NewPoissonArrivals(rate float64) Arrivals { return workload.Poisson{Rate: rate} }

// NewDiurnalArrivals returns a sinusoidally-modulated Poisson process:
// lambda(t) = base*(1 + amplitude*sin(2*pi*t/period)) with amplitude in
// [0, 1) — the day/night load shape.
func NewDiurnalArrivals(base, amplitude float64, period Time) Arrivals {
	return workload.NewDiurnal(base, amplitude, period)
}

// NewBurstArrivals returns a two-state Markov-modulated Poisson process:
// base rate normally, base*factor during bursts, with exponential state
// sojourns of the given means — flash-crowd traffic.
func NewBurstArrivals(base, factor float64, meanQuiet, meanBurst Time) Arrivals {
	return workload.NewBurst(base, factor, meanQuiet, meanBurst)
}

// NewTraceArrivals replays a fixed inter-arrival gap sequence, cycling when
// exhausted (deterministic-trace arrivals).
func NewTraceArrivals(gaps []Time) Arrivals { return workload.NewTrace(gaps) }

// AdmitPolicy is the streaming-admission/backpressure policy of service mode
// (Config.Service; see internal/admit): admission window, epoch cadence,
// bounded queue, per-class sojourn SLOs, and overload control.
type AdmitPolicy = admit.Policy

// EpochStats is one admission epoch's service snapshot, delivered to the
// epoch hook of a service-mode run.
type EpochStats = admit.EpochStats

// DefaultAdmitPolicy returns the default streaming-admission policy: an
// 8-wide window, 500 ms epochs, a 256-entry queue, 20% interactive traffic,
// overdue shedding, and overload control at a 30 s sojourn p95.
func DefaultAdmitPolicy() AdmitPolicy { return admit.DefaultPolicy() }

// RunService runs the simulator in streaming-admission service mode:
// cfg.Service must carry the admission policy and the run needs an arrival
// process (cfg.Arrivals, or the Poisson at cfg.ArrivalRate). Arrivals flow
// through the bounded deadline-ordered admission queue; the epoch loop
// admits them into the policy's in-flight window and sheds load under
// backpressure. epochHook, if non-nil, receives every epoch's snapshot (for
// per-epoch SLI ledger lines and gauges). Deterministic in the seed.
func RunService(cfg Config, scheduler string, params Params, gen Generator, seed int64, epochHook func(EpochStats)) (Summary, error) {
	if cfg.Service == nil {
		return Summary{}, fmt.Errorf("batchsched: RunService needs cfg.Service (the admission policy)")
	}
	s, err := sched.New(scheduler, params)
	if err != nil {
		return Summary{}, err
	}
	m, err := machine.New(cfg, s, gen, sim.NewRNG(seed))
	if err != nil {
		return Summary{}, err
	}
	if epochHook != nil {
		m.SetEpochHook(epochHook)
	}
	return m.Run(), nil
}

// NewFixedWorkload replays one pattern with a fixed file binding, e.g.
//
//	gen, err := batchsched.NewFixedWorkload("Xr(F1:1)->w(F1:0.2)",
//	    map[string]batchsched.FileID{"F1": 3})
func NewFixedWorkload(pattern string, binding map[string]FileID) (Generator, error) {
	p, err := model.ParsePattern(pattern)
	if err != nil {
		return nil, err
	}
	steps, err := p.Instantiate(binding)
	if err != nil {
		return nil, err
	}
	return workload.Fixed{Template: steps}, nil
}

// ArtifactIDs lists the regenerable artifacts in paper order — fig8,
// table2, fig9, table3, fig10, fig11, table4, fig12, fig13, table5 — plus
// the exp4 fault extension.
func ArtifactIDs() []string {
	out := make([]string, len(experiments.Artifacts))
	for i, a := range experiments.Artifacts {
		out[i] = a.ID
	}
	return out
}

// RegenerateArtifact reruns the simulations behind one of the paper's
// tables or figures and returns the rendered comparison table. The zero
// Options reproduces the paper's full 2,000,000-ms windows; see Options for
// scaled-down runs.
func RegenerateArtifact(id string, o Options) (string, error) {
	a, ok := experiments.FindArtifact(id)
	if !ok {
		return "", fmt.Errorf("batchsched: unknown artifact %q (want one of %v)", id, ArtifactIDs())
	}
	return a.Run(o).String(), nil
}

// ThroughputAt70s finds the arrival rate at which the configuration's mean
// response time reaches the paper's 70-second operating point and returns
// the throughput measured there. workload selects "exp1" or "exp2"; sigma
// adds the Experiment-3 error model.
func ThroughputAt70s(scheduler string, numFiles, dd int, wl string, sigma float64) float64 {
	p := experiments.Point{
		Scheduler: scheduler,
		NumFiles:  numFiles,
		DD:        dd,
		Load:      experiments.Workload(wl),
		Sigma:     sigma,
		Seed:      1,
	}
	lambda := experiments.SolveLambdaAtRT(p, 1, experiments.TargetRT, 0.02, 1.4, 0.01)
	p.Lambda = lambda
	return experiments.Run(p).TPS
}

// LiveConfig parameterizes the real-execution backend: the same scheduler
// core the simulator drives, executed for real — one goroutine per
// data-processing node over an in-memory partitioned store, Go channels for
// CN<->DPN messaging, and wall-clock round-robin service. See
// internal/engine/live and DESIGN.md §12.
type LiveConfig = live.Config

// DefaultLiveConfig mirrors the simulator's default machine shape on the
// live backend (8 nodes, 16 files, DD 1, compute-bound service).
func DefaultLiveConfig() LiveConfig { return live.DefaultConfig() }

// GenerateBatch pre-draws the steps of n transactions from gen, so the
// identical batch can be submitted to both backends (transaction i is
// byte-identical regardless of backend). It is the closed-batch entry of
// the shared workload.Source draw path: an open-stream service run over the
// same generator and seed sees byte-identical transaction i.
func GenerateBatch(gen Generator, seed int64, n int) [][]Step {
	src := workload.Source{Gen: gen.(workload.Generator)}
	return src.DrawBatch(sim.NewRNG(seed).Stream("workload"), n)
}

// RunLiveBatch executes a closed batch on the live backend: every
// transaction is submitted up front and the run drives the batch to commit,
// summarizing at the makespan. The returned summary has the same shape as
// the simulator's (Window is the wall-clock makespan).
func RunLiveBatch(cfg LiveConfig, scheduler string, params Params, batch [][]Step) (Summary, error) {
	s, err := sched.New(scheduler, params)
	if err != nil {
		return Summary{}, err
	}
	b, err := live.New(cfg, s)
	if err != nil {
		return Summary{}, err
	}
	for _, steps := range batch {
		b.Submit(steps)
	}
	sum := b.Run()
	if err := b.Err(); err != nil {
		return sum, err
	}
	if scheduler != "NODC" && scheduler != "OPT" {
		if v := b.Violations(); v != 0 {
			return sum, fmt.Errorf("batchsched: live %s run observed %d lock-guard violations", scheduler, v)
		}
	}
	return sum, nil
}

// RunLiveChecked is RunLiveBatch with conflict-serializability
// verification of the real execution's history, as RunChecked is for Run.
func RunLiveChecked(cfg LiveConfig, scheduler string, params Params, batch [][]Step) (Summary, error) {
	s, err := sched.New(scheduler, params)
	if err != nil {
		return Summary{}, err
	}
	b, err := live.New(cfg, s)
	if err != nil {
		return Summary{}, err
	}
	rec := history.New()
	if scheduler == "OPT" {
		rec = history.NewDeferredWrites()
	}
	// Wall-clock stamps from racing goroutines are not globally ordered;
	// the recorder clamps them monotone (DESIGN.md §12).
	rec.SetMonotone(true)
	b.SetObserver(rec)
	for _, steps := range batch {
		b.Submit(steps)
	}
	sum := b.Run()
	if err := b.Err(); err != nil {
		return sum, err
	}
	if err := rec.CheckSerializable(); err != nil {
		return sum, fmt.Errorf("batchsched: %s produced a non-serializable live history: %w", scheduler, err)
	}
	return sum, nil
}

// NewStreamSet returns an enabled streaming instrument registry, ready for
// LiveBackend.SetStream and serve-side rendering. A nil *StreamSet is the
// disabled registry.
func NewStreamSet() *StreamSet { return stream.NewSet() }

// LiveBackend is the real-execution backend handle. Most callers use
// RunLiveBatch; telemetry servers build one with NewLiveBackend so they can
// attach instruments (SetStream, SetObs), read its clock (Now) and take
// concurrent snapshots (Snapshot) while RunLiveTelemetry drives the batch.
type LiveBackend = live.Backend

// NewLiveBackend builds an un-run live backend for the named scheduler.
func NewLiveBackend(cfg LiveConfig, scheduler string, params Params) (*LiveBackend, error) {
	s, err := sched.New(scheduler, params)
	if err != nil {
		return nil, err
	}
	return live.New(cfg, s)
}

// LiveResult bundles a live run's summary with the run-level telemetry the
// SLI ledger records: guard violations and observability clock clamps.
type LiveResult struct {
	Summary Summary
	// Violations counts incompatible cohort co-residencies the DPN lock
	// guards observed (zero for every real scheduler; positive under NODC).
	Violations int
	// ClockClamps counts monotone clock-regression clamps in the
	// observability layer (span ends plus metric samples).
	ClockClamps int64
}

// RunLiveTelemetry executes a closed batch on a pre-built backend (see
// NewLiveBackend), with optional conflict-serializability checking of the
// real history. scheduler must name the scheduler the backend was built
// with (it selects the history semantics and the guard-violation policy).
// Unlike RunLiveBatch it reports guard violations in the result instead of
// failing on them, so telemetry consumers (the SLI ledger) can record them
// as a measure.
func RunLiveTelemetry(b *LiveBackend, scheduler string, batch [][]Step, check bool) (LiveResult, error) {
	var rec *history.Recorder
	if check {
		rec = history.New()
		if scheduler == "OPT" {
			rec = history.NewDeferredWrites()
		}
		// Wall-clock stamps from racing goroutines are not globally ordered;
		// the recorder clamps them monotone (DESIGN.md §12).
		rec.SetMonotone(true)
		b.SetObserver(rec)
	}
	for _, steps := range batch {
		b.Submit(steps)
	}
	sum := b.Run()
	res := LiveResult{Summary: sum, Violations: b.Violations()}
	ends, samples := b.ClockClamps()
	res.ClockClamps = ends + samples
	if err := b.Err(); err != nil {
		return res, err
	}
	if check {
		if err := rec.CheckSerializable(); err != nil {
			return res, fmt.Errorf("batchsched: %s produced a non-serializable live history: %w", scheduler, err)
		}
	}
	return res, nil
}

// RunSimBatch executes the same kind of closed batch on the simulator
// (no arrival process; RunClosed drives the submitted transactions to
// commit and summarizes at the makespan), for sim-vs-live comparisons.
func RunSimBatch(cfg Config, scheduler string, params Params, batch [][]Step) (Summary, error) {
	s, err := sched.New(scheduler, params)
	if err != nil {
		return Summary{}, err
	}
	cfg.ArrivalRate = 0
	cfg.Warmup = 0
	m, err := machine.New(cfg, s, nil, sim.NewRNG(1))
	if err != nil {
		return Summary{}, err
	}
	for _, steps := range batch {
		m.Submit(steps)
	}
	sum := m.RunClosed(cfg.Duration)
	if m.InFlight() != 0 {
		return sum, fmt.Errorf("batchsched: sim %s batch: %d transactions still in flight at horizon", scheduler, m.InFlight())
	}
	return sum, nil
}

// SimVsLiveReport runs the Experiment-1 sim-vs-live comparison grid (the
// same closed batch through both backends, per scheduler) and returns the
// rendered ranking table. See internal/experiments.RunSimVsLive.
func SimVsLiveReport(seed int64, n int) (string, error) {
	results, err := experiments.RunSimVsLive(seed, n)
	if err != nil {
		return "", err
	}
	return experiments.SimVsLiveTable(results).String(), nil
}
