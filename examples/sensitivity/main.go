// Sensitivity example: the WTPG schedulers rely on transactions declaring
// their I/O demands. This example injects Gaussian estimation error into
// the declared costs (the paper's Experiment 3) and shows that GOW barely
// notices while LOW degrades — and that declustering heals LOW.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"

	"batchsched"
)

func main() {
	sigmas := []float64{0, 1, 10}
	fmt.Println("Experiment 3: throughput at the RT=70s operating point vs. declared-cost error σ")
	fmt.Println("(each cell solves for the arrival rate where mean RT = 70s; takes a minute)")
	fmt.Println()
	for _, dd := range []int{1, 4} {
		fmt.Printf("  DD=%d\n", dd)
		fmt.Printf("    %-6s", "σ")
		for _, s := range []string{"GOW", "LOW"} {
			fmt.Printf(" %8s", s)
		}
		fmt.Println()
		for _, sigma := range sigmas {
			fmt.Printf("    %-6g", sigma)
			for _, s := range []string{"GOW", "LOW"} {
				tps := batchsched.ThroughputAt70s(s, 16, dd, "exp1", sigma)
				fmt.Printf(" %8.2f", tps)
			}
			fmt.Println()
		}
	}
	fmt.Println()
	fmt.Println("GOW's chain-form constraint makes it nearly insensitive to bad")
	fmt.Println("estimates; LOW loses ~20% at DD=1 and σ=10 but recovers once")
	fmt.Println("declustering shortens the blocking chains (paper Table 5).")
}
