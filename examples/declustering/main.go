// Declustering example: how intra-transaction parallelism (splitting every
// file over DD nodes) speeds batches up under different schedulers — the
// paper's Figure-10 story. ASL/LOW get near-linear response-time speedup
// from declustering even at heavy load; OPT wastes the parallelism on
// restarted work.
//
//	go run ./examples/declustering
package main

import (
	"fmt"
	"log"

	"batchsched"
)

func main() {
	schedulers := []string{"ASL", "LOW", "OPT"}
	dds := []int{1, 2, 4, 8}
	gen := batchsched.NewExp1Workload(16)

	base := make(map[string]float64)
	fmt.Println("Experiment 1 at 1.2 TPS (heavy load), response time by degree of declustering:")
	fmt.Println()
	fmt.Printf("  %-4s", "DD")
	for _, s := range schedulers {
		fmt.Printf(" %14s", s)
	}
	fmt.Println()
	for _, dd := range dds {
		fmt.Printf("  %-4d", dd)
		for _, s := range schedulers {
			cfg := batchsched.DefaultConfig()
			cfg.ArrivalRate = 1.2
			cfg.DD = dd
			cfg.Duration = 2000 * batchsched.Second
			sum, err := batchsched.Run(cfg, s, batchsched.DefaultParams(), gen, 3)
			if err != nil {
				log.Fatal(err)
			}
			rt := sum.MeanRT.Seconds()
			if dd == 1 {
				base[s] = rt
			}
			fmt.Printf(" %6.0fs (%4.1fx)", rt, base[s]/rt)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("(Nx) is the response-time speedup over DD=1. ASL and LOW scale")
	fmt.Println("nearly linearly; OPT's speedup stalls because restarts keep the")
	fmt.Println("nodes saturated with wasted work (paper Fig. 10).")
}
