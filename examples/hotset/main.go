// Hot-set example: the paper's Experiment 2 — every batch updates two of
// eight "hot" files (think master files updated by periodic database
// maintenance). Compares all schedulers at a heavy load and shows why the
// paper recommends LOW for hot-set workloads: ASL barely starts anything,
// C2PL starts everything but chains up, LOW threads the needle.
//
//	go run ./examples/hotset
package main

import (
	"fmt"
	"log"

	"batchsched"
)

func main() {
	cfg := batchsched.DefaultConfig()
	cfg.ArrivalRate = 1.0
	cfg.DD = 1
	cfg.Duration = 2000 * batchsched.Second

	gen := batchsched.NewExp2Workload() // r(B:5) -> w(F1:1) -> w(F2:1), hot F1/F2

	fmt.Println("Experiment-2 hot-set workload at 1.0 TPS, DD=1:")
	fmt.Println()
	fmt.Printf("  %-6s %10s %12s %8s %9s\n", "sched", "meanRT(s)", "throughput", "blocks", "rejects")
	params := batchsched.DefaultParams()
	params.MPL = 8 // for C2PL+M
	for _, scheduler := range []string{"NODC", "LOW", "C2PL", "C2PL+M", "GOW", "ASL", "OPT"} {
		sum, err := batchsched.Run(cfg, scheduler, params, gen, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %10.1f %12.2f %8d %9d\n",
			scheduler, sum.MeanRT.Seconds(), sum.TPS, sum.Blocks, sum.AdmissionRejects)
	}
	fmt.Println()
	fmt.Println("Expected ordering on a hot set (paper Table 4): LOW best, then")
	fmt.Println("C2PL, then GOW; ASL is worst among the blocking-free schedulers")
	fmt.Println("because atomic lock acquisition rarely succeeds on hot files.")
}
