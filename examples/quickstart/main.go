// Quickstart: simulate the paper's Experiment-1 batch workload under two
// schedulers and compare their headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"batchsched"
)

func main() {
	cfg := batchsched.DefaultConfig()
	cfg.ArrivalRate = 0.6 // transactions per second
	cfg.NumFiles = 16     // database size in files
	cfg.DD = 1            // no intra-transaction parallelism
	cfg.Duration = 2000 * batchsched.Second

	workload := batchsched.NewExp1Workload(cfg.NumFiles)

	fmt.Println("Experiment-1 batch workload (bulk reads + bulk updates), 0.6 TPS:")
	fmt.Println()
	for _, scheduler := range []string{"LOW", "C2PL"} {
		sum, err := batchsched.Run(cfg, scheduler, batchsched.DefaultParams(), workload, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s mean RT %7.1fs  throughput %.2f TPS  DPN busy %4.1f%%  blocks %d\n",
			scheduler, sum.MeanRT.Seconds(), sum.TPS, 100*sum.DPNUtilization, sum.Blocks)
	}
	fmt.Println()
	fmt.Println("LOW's WTPG scheduling avoids the chains of blocking that inflate")
	fmt.Println("C2PL's response time at the same arrival rate.")
}
