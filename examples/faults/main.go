// Faults: run the same batch workload on a healthy machine and on one whose
// nodes crash, straggle and lose messages, and compare what each scheduler
// pays for the recovery work. Every fault draw comes from a dedicated RNG
// stream, so all runs below face the identical fault schedule.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"

	"batchsched"
)

func main() {
	cfg := batchsched.DefaultConfig()
	cfg.ArrivalRate = 0.6
	cfg.DD = 2 // declustering: one crash now kills cohorts of several txns
	cfg.Duration = 2000 * batchsched.Second
	cfg.RestartDelay = 5 * batchsched.Second // hold crash victims back briefly

	faults := batchsched.FaultConfig{
		MTBF: 200 * batchsched.Second, // per-node mean time between crashes
		MTTR: 10 * batchsched.Second,  // mean outage per crash

		StragglerMTBF:     500 * batchsched.Second, // slow-disk episodes...
		StragglerDuration: 30 * batchsched.Second,  // ...of fixed length...
		StragglerFactor:   3,                       // ...at 3x service time

		MsgLoss:    0.01, // 1% of CN<->DPN messages vanish
		MsgTimeout: 5 * batchsched.Second,
		MsgRetries: 2, // then the transaction aborts and resubmits
	}

	workload := batchsched.NewExp1Workload(cfg.NumFiles)

	for _, scheduler := range []string{"LOW", "C2PL"} {
		fmt.Printf("%s:\n", scheduler)
		for _, faulty := range []bool{false, true} {
			cfg.Faults = batchsched.FaultConfig{}
			label := "healthy"
			if faulty {
				cfg.Faults = faults
				label = "faulty "
			}
			sum, err := batchsched.Run(cfg, scheduler, batchsched.DefaultParams(), workload, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s  mean RT %7.1fs  %.2f TPS  restarts %3d", label, sum.MeanRT.Seconds(), sum.TPS, sum.Restarts)
			if faulty {
				fmt.Printf("  (crashes %d, stragglers %d, msgs lost %d, availability %.2f%%)",
					sum.Crashes, sum.StragglerEpisodes, sum.MsgLost, 100*sum.Availability())
			}
			fmt.Println()
		}
	}
	fmt.Println()
	fmt.Println("The fault schedule depends only on (seed, fault config), so both")
	fmt.Println("schedulers above saw exactly the same crashes at the same times.")
}
