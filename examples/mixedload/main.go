// Mixed-load example: the scenario that motivates the whole paper — an
// OLTP system running short transactions alongside bulk-update batches.
// This example runs the mix under three schedulers, uses the JSONL trace
// API to split response times by transaction class, and shows that the
// batch scheduler choice decides how badly short transactions suffer
// behind file-granularity batch locks.
//
//	go run ./examples/mixedload
package main

import (
	"bytes"
	"fmt"
	"log"

	"batchsched"
	"batchsched/internal/trace"
)

func main() {
	const (
		numFiles      = 16
		shortFraction = 0.8  // 4 short transactions per batch
		shortCost     = 0.01 // ~25 KB record read at 2.5 MB objects
	)
	gen := batchsched.NewMixedWorkload(
		batchsched.NewExp1Workload(numFiles), numFiles, shortFraction, shortCost)

	fmt.Println("Mixed OLTP load: 80% short record reads + 20% bulk-update batches, 2.0 TPS total")
	fmt.Println()
	fmt.Printf("  %-6s %16s %16s %10s\n", "sched", "short mean RT", "batch mean RT", "blocks")
	for _, scheduler := range []string{"LOW", "ASL", "C2PL"} {
		cfg := batchsched.DefaultConfig()
		cfg.ArrivalRate = 2.0
		cfg.Duration = 2000 * batchsched.Second

		var buf bytes.Buffer
		sum, err := batchsched.RunTraced(cfg, scheduler, batchsched.DefaultParams(), gen, 11, &buf)
		if err != nil {
			log.Fatal(err)
		}
		events, err := trace.Read(&buf)
		if err != nil {
			log.Fatal(err)
		}
		var shortRT, batchRT float64
		var shortN, batchN int
		for _, e := range events {
			if e.Kind != "commit" {
				continue
			}
			if e.Cost < 1 { // short transactions cost 0.01 objects
				shortRT += e.RTms
				shortN++
			} else {
				batchRT += e.RTms
				batchN++
			}
		}
		fmt.Printf("  %-6s %14.1fs %14.1fs %10d\n",
			scheduler, shortRT/float64(shortN)/1000, batchRT/float64(batchN)/1000, sum.Blocks)
	}
	fmt.Println()
	fmt.Println("Short transactions pay for every batch lock they queue behind;")
	fmt.Println("a batch scheduler that avoids chains of blocking (LOW) keeps the")
	fmt.Println("short-transaction response times an order of magnitude lower than")
	fmt.Println("C2PL at the same load. (Real systems would also give short")
	fmt.Println("transactions record-level locks, as the paper notes.)")
}
